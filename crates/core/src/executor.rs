//! The executor: runs a probabilistic program under the control of a
//! [`Proposer`], recording a [`Trace`].
//!
//! This is the controller half of Figure 1 in the paper: the simulator keeps
//! requesting random numbers; the executor answers each request (from the
//! prior, from a proposal distribution, or by replaying a stored value),
//! scores everything, and accumulates the trace.

use crate::address::{Address, AddressBuilder};
use crate::program::{ProbProgram, RunError, SimCtx};
use crate::trace::{EntryKind, Trace, TraceEntry};
use etalumis_distributions::{Distribution, Value};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::sync::Arc;

/// Observed data registered before an inference run: maps observe-statement
/// names to their observed values.
pub type ObserveMap = HashMap<String, Value>;

/// A single sample request presented to a [`Proposer`].
pub struct SampleRequest<'a> {
    /// Address of the statement (fully qualified, instance included).
    pub address: &'a Address,
    /// Prior distribution at this site.
    pub dist: &'a Distribution,
    /// Statement name.
    pub name: &'a str,
    /// Index of this request among controlled samples in the current trace.
    pub time_step: usize,
}

/// What a proposer decides for one sample statement.
pub enum ProposalDecision {
    /// Draw from the prior distribution.
    Prior,
    /// Use this exact value (replay); its log_q is scored under the prior.
    Replay(Value),
    /// Use this exact value with an explicit proposal log-density
    /// (e.g. an MCMC transition kernel).
    ReplayWithLogQ(Value, f64),
    /// Draw from this proposal distribution and score log_q under it.
    Proposal(Distribution),
}

/// Decides values for sample statements during one execution.
///
/// Implementations include the prior proposer (trace generation / forward
/// simulation), single-site MH proposers, and the IC neural proposer.
pub trait Proposer {
    /// Called once before the program runs, with the registered observation
    /// map (the IC proposer embeds the observation here).
    fn begin_trace(&mut self, observes: &ObserveMap) {
        let _ = observes;
    }

    /// Decide how to realize one controlled sample statement.
    fn propose(&mut self, req: &SampleRequest) -> ProposalDecision;

    /// Informed of the value actually realized for `req` (fed back into
    /// sequential proposers such as the IC LSTM).
    fn notify(&mut self, req: &SampleRequest, value: &Value) {
        let _ = (req, value);
    }
}

/// Propose everything from the prior (forward simulation).
#[derive(Default, Clone, Copy, Debug)]
pub struct PriorProposer;

impl Proposer for PriorProposer {
    fn propose(&mut self, _req: &SampleRequest) -> ProposalDecision {
        ProposalDecision::Prior
    }
}

/// The recording state of one execution, shared by the borrowing
/// [`Executor`] (inverted control: `program.run(ctx)` drives it) and the
/// owning [`StepExecutor`] (event-driven: a protocol reactor feeds it one
/// sample/observe/tag request at a time). Both paths run exactly the same
/// code against the same RNG discipline, which is what keeps event-driven
/// remote executions bit-identical to blocking ones.
struct Recorder {
    builder: AddressBuilder,
    trace: Trace,
    controlled_steps: usize,
    /// When false, observe statements *draw* synthetic observations from the
    /// likelihood instead of scoring registered data (prior/training mode
    /// falls back to drawing whenever no observation is registered).
    scoring: bool,
}

impl Recorder {
    fn new() -> Self {
        Self {
            builder: AddressBuilder::new(),
            trace: Trace::default(),
            controlled_steps: 0,
            scoring: true,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn record_sample(
        &mut self,
        rng: &mut StdRng,
        proposer: &mut dyn Proposer,
        address: Address,
        dist: &Distribution,
        name: &str,
        control: bool,
        replace: bool,
    ) -> Value {
        let kind = if replace { EntryKind::SampleReplaced } else { EntryKind::Sample };
        let controlled = control && !replace;
        let (value, log_q) = if controlled {
            let req =
                SampleRequest { address: &address, dist, name, time_step: self.controlled_steps };
            let decision = proposer.propose(&req);
            let (v, lq) = match decision {
                ProposalDecision::Prior => {
                    let v = dist.sample(rng);
                    let lp = dist.log_prob(&v);
                    (v, lp)
                }
                ProposalDecision::Replay(v) => {
                    let lp = dist.log_prob(&v);
                    (v, lp)
                }
                ProposalDecision::ReplayWithLogQ(v, lq) => (v, lq),
                ProposalDecision::Proposal(q) => {
                    let v = q.sample(rng);
                    let lq = q.log_prob(&v);
                    (v, lq)
                }
            };
            proposer.notify(&req, &v);
            self.controlled_steps += 1;
            (v, lq)
        } else {
            // Replaced or uncontrolled: always from the prior.
            let v = dist.sample(rng);
            let lp = dist.log_prob(&v);
            (v, lp)
        };
        let log_prob = dist.log_prob(&value);
        self.trace.log_prior += log_prob;
        self.trace.log_q += log_q;
        self.trace.entries.push(TraceEntry {
            address,
            distribution: dist.clone(),
            value: value.clone(),
            log_prob,
            log_q,
            kind,
            name: name.to_string(),
        });
        value
    }

    fn record_observe(
        &mut self,
        rng: &mut StdRng,
        observes: &ObserveMap,
        address: Address,
        dist: &Distribution,
        name: &str,
    ) -> Value {
        let value = if self.scoring {
            match observes.get(name) {
                Some(v) => v.clone(),
                // No registered observation: draw a synthetic one (prior /
                // training-data generation mode).
                None => dist.sample(rng),
            }
        } else {
            dist.sample(rng)
        };
        let log_prob = dist.log_prob(&value);
        self.trace.log_likelihood += log_prob;
        self.trace.entries.push(TraceEntry {
            address,
            distribution: dist.clone(),
            value: value.clone(),
            log_prob,
            log_q: log_prob,
            kind: EntryKind::Observe,
            name: name.to_string(),
        });
        value
    }

    fn sample_address(&mut self, address_base: &str, replace: bool) -> Address {
        // The remote side owns base construction; we still manage instance
        // counting locally so re-executions stay consistent.
        if replace {
            Address::new(address_base, 0)
        } else {
            self.builder.next_with_base(address_base)
        }
    }
}

/// Runs programs and records traces. Implements [`SimCtx`].
pub struct Executor<'a> {
    rng: &'a mut StdRng,
    proposer: &'a mut dyn Proposer,
    observes: &'a ObserveMap,
    rec: Recorder,
}

impl<'a> Executor<'a> {
    /// Run `program` once under `proposer`, conditioning on `observes`.
    ///
    /// Panics if the program fails (only possible for remote programs whose
    /// transport dies); use [`Executor::try_execute`] to handle that.
    pub fn execute(
        program: &mut dyn ProbProgram,
        proposer: &mut dyn Proposer,
        observes: &ObserveMap,
        rng: &mut StdRng,
    ) -> Trace {
        Self::try_execute(program, proposer, observes, rng)
            // etalumis: allow(panic-freedom, reason = "documented infallible wrapper; try_execute is the fallible API")
            .unwrap_or_else(|e| panic!("{e} (use Executor::try_execute to handle failures)"))
    }

    /// Fallible [`Executor::execute`]: surfaces remote-program transport
    /// failures as a [`RunError`] instead of panicking.
    pub fn try_execute(
        program: &mut dyn ProbProgram,
        proposer: &mut dyn Proposer,
        observes: &ObserveMap,
        rng: &mut StdRng,
    ) -> Result<Trace, RunError> {
        proposer.begin_trace(observes);
        let mut ex = Executor { rng, proposer, observes, rec: Recorder::new() };
        let result = program.try_run(&mut ex)?;
        ex.rec.trace.result = result;
        Ok(ex.rec.trace)
    }

    /// Convenience: run once from the prior with a fresh seeded RNG.
    pub fn sample_prior(program: &mut dyn ProbProgram, seed: u64) -> Trace {
        Self::execute_seeded(program, &mut PriorProposer, &ObserveMap::new(), seed)
    }

    /// Run once under `proposer` with a fresh RNG seeded from `seed`.
    ///
    /// The RNG is owned by the single execution, so the resulting trace is a
    /// pure function of `(program, proposer, observes, seed)` — the property
    /// parallel runtimes rely on to keep results independent of worker count
    /// and scheduling order.
    pub fn execute_seeded(
        program: &mut dyn ProbProgram,
        proposer: &mut dyn Proposer,
        observes: &ObserveMap,
        seed: u64,
    ) -> Trace {
        let mut rng = StdRng::seed_from_u64(seed);
        Self::execute(program, proposer, observes, &mut rng)
    }

    /// Fallible [`Executor::execute_seeded`].
    pub fn try_execute_seeded(
        program: &mut dyn ProbProgram,
        proposer: &mut dyn Proposer,
        observes: &ObserveMap,
        seed: u64,
    ) -> Result<Trace, RunError> {
        let mut rng = StdRng::seed_from_u64(seed);
        Self::try_execute(program, proposer, observes, &mut rng)
    }
}

impl SimCtx for Executor<'_> {
    fn sample_ext(
        &mut self,
        dist: &Distribution,
        name: &str,
        control: bool,
        replace: bool,
    ) -> Value {
        let address = self.rec.builder.next(name, dist.kind(), replace);
        self.rec.record_sample(self.rng, self.proposer, address, dist, name, control, replace)
    }

    fn observe(&mut self, dist: &Distribution, name: &str) -> Value {
        let address = self.rec.builder.next(name, dist.kind(), false);
        self.rec.record_observe(self.rng, self.observes, address, dist, name)
    }

    fn tag(&mut self, name: &str, value: Value) {
        self.rec.trace.tags.push((name.to_string(), value));
    }

    fn push_scope(&mut self, scope: &str) {
        self.rec.builder.push_scope(scope);
    }

    fn pop_scope(&mut self) {
        self.rec.builder.pop_scope();
    }

    fn sample_with_address(
        &mut self,
        address_base: &str,
        dist: &Distribution,
        name: &str,
        control: bool,
        replace: bool,
    ) -> Value {
        let address = self.rec.sample_address(address_base, replace);
        self.rec.record_sample(self.rng, self.proposer, address, dist, name, control, replace)
    }

    fn observe_with_address(
        &mut self,
        address_base: &str,
        dist: &Distribution,
        name: &str,
    ) -> Value {
        let address = self.rec.builder.next_with_base(address_base);
        self.rec.record_observe(self.rng, self.observes, address, dist, name)
    }
}

/// An executor that owns its whole execution state, for event-driven runs.
///
/// The classic [`Executor`] has inverted control: `program.run(ctx)` calls
/// back into it, so its state can live on the driving thread's stack. A
/// protocol reactor multiplexing many remote executions on one thread cannot
/// block inside `run`; it needs per-session executor state that persists
/// across suspension points. `StepExecutor` is exactly that: create one per
/// trace with the same `(proposer, observes, seed)` a blocking run would
/// use, feed it each incoming sample/observe/tag request through its
/// [`SimCtx`] impl, and [`StepExecutor::finish`] it with the run result.
///
/// Both executors share one [`Recorder`], so the produced [`Trace`] is
/// bit-identical to `Executor::execute_seeded` for the same request
/// sequence.
pub struct StepExecutor {
    rng: StdRng,
    proposer: Box<dyn Proposer + Send>,
    observes: Arc<ObserveMap>,
    rec: Recorder,
}

impl StepExecutor {
    /// Begin one execution: seeds the RNG from `seed` and announces the
    /// trace to the proposer, mirroring [`Executor::execute_seeded`].
    pub fn new(
        mut proposer: Box<dyn Proposer + Send>,
        observes: Arc<ObserveMap>,
        seed: u64,
    ) -> Self {
        proposer.begin_trace(&observes);
        Self { rng: StdRng::seed_from_u64(seed), proposer, observes, rec: Recorder::new() }
    }

    /// Complete the execution with the program's result value, returning the
    /// recorded trace and handing the proposer back for reuse on the next
    /// trace of the same session.
    pub fn finish(self, result: Value) -> (Trace, Box<dyn Proposer + Send>) {
        let mut trace = self.rec.trace;
        trace.result = result;
        (trace, self.proposer)
    }
}

impl SimCtx for StepExecutor {
    fn sample_ext(
        &mut self,
        dist: &Distribution,
        name: &str,
        control: bool,
        replace: bool,
    ) -> Value {
        let address = self.rec.builder.next(name, dist.kind(), replace);
        self.rec.record_sample(
            &mut self.rng,
            self.proposer.as_mut(),
            address,
            dist,
            name,
            control,
            replace,
        )
    }

    fn observe(&mut self, dist: &Distribution, name: &str) -> Value {
        let address = self.rec.builder.next(name, dist.kind(), false);
        self.rec.record_observe(&mut self.rng, &self.observes, address, dist, name)
    }

    fn tag(&mut self, name: &str, value: Value) {
        self.rec.trace.tags.push((name.to_string(), value));
    }

    fn push_scope(&mut self, scope: &str) {
        self.rec.builder.push_scope(scope);
    }

    fn pop_scope(&mut self) {
        self.rec.builder.pop_scope();
    }

    fn sample_with_address(
        &mut self,
        address_base: &str,
        dist: &Distribution,
        name: &str,
        control: bool,
        replace: bool,
    ) -> Value {
        let address = self.rec.sample_address(address_base, replace);
        self.rec.record_sample(
            &mut self.rng,
            self.proposer.as_mut(),
            address,
            dist,
            name,
            control,
            replace,
        )
    }

    fn observe_with_address(
        &mut self,
        address_base: &str,
        dist: &Distribution,
        name: &str,
    ) -> Value {
        let address = self.rec.builder.next_with_base(address_base);
        self.rec.record_observe(&mut self.rng, &self.observes, address, dist, name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{FnProgram, SimCtxExt};

    fn gaussian_model() -> FnProgram<impl FnMut(&mut dyn SimCtx) -> Value> {
        FnProgram::new("gauss", |ctx: &mut dyn SimCtx| {
            let mu = ctx.sample_f64(&Distribution::Normal { mean: 0.0, std: 1.0 }, "mu");
            ctx.observe(&Distribution::Normal { mean: mu, std: 0.5 }, "y");
            Value::Real(mu)
        })
    }

    #[test]
    fn prior_execution_records_trace() {
        let mut m = gaussian_model();
        let t = Executor::sample_prior(&mut m, 42);
        assert_eq!(t.entries.len(), 2);
        assert_eq!(t.num_controlled(), 1);
        assert!(t.log_prior.is_finite());
        assert!(t.log_likelihood.is_finite());
        // Prior proposals: log_q of samples equals log_prior contribution.
        assert!((t.log_q - t.log_prior).abs() < 1e-12);
        assert!((t.log_weight() - t.log_likelihood).abs() < 1e-12);
    }

    #[test]
    fn observe_scores_registered_data() {
        let mut m = gaussian_model();
        let mut observes = ObserveMap::new();
        observes.insert("y".to_string(), Value::Real(2.0));
        let mut rng = StdRng::seed_from_u64(0);
        let mut prior = PriorProposer;
        let t = Executor::execute(&mut m, &mut prior, &observes, &mut rng);
        let y = t.entries.iter().find(|e| e.name == "y").unwrap();
        assert_eq!(y.value, Value::Real(2.0));
        assert_eq!(y.kind, EntryKind::Observe);
        let mu = t.value_by_name("mu").unwrap().as_f64();
        let expect = Distribution::Normal { mean: mu, std: 0.5 }.log_prob(&Value::Real(2.0));
        assert!((t.log_likelihood - expect).abs() < 1e-12);
    }

    #[test]
    fn replay_proposer_reproduces_values() {
        struct Fixed(f64);
        impl Proposer for Fixed {
            fn propose(&mut self, _req: &SampleRequest) -> ProposalDecision {
                ProposalDecision::Replay(Value::Real(self.0))
            }
        }
        let mut m = gaussian_model();
        let mut rng = StdRng::seed_from_u64(0);
        let mut p = Fixed(1.25);
        let observes = ObserveMap::new();
        let t = Executor::execute(&mut m, &mut p, &observes, &mut rng);
        assert_eq!(t.value_by_name("mu"), Some(&Value::Real(1.25)));
    }

    #[test]
    fn replaced_samples_not_proposed() {
        struct CountingProposer(usize);
        impl Proposer for CountingProposer {
            fn propose(&mut self, _req: &SampleRequest) -> ProposalDecision {
                self.0 += 1;
                ProposalDecision::Prior
            }
        }
        let mut m = FnProgram::new("rej", |ctx: &mut dyn SimCtx| {
            // rejection loop: accept u > 0.3
            let mut u;
            loop {
                u = ctx.sample_replaced(&Distribution::Uniform { low: 0.0, high: 1.0 }, "u");
                if u.as_f64() > 0.3 {
                    break;
                }
            }
            let _x = ctx.sample(&Distribution::Normal { mean: 0.0, std: 1.0 }, "x");
            u
        });
        let mut rng = StdRng::seed_from_u64(9);
        let mut p = CountingProposer(0);
        let observes = ObserveMap::new();
        let t = Executor::execute(&mut m, &mut p, &observes, &mut rng);
        // Only "x" goes through the proposer.
        assert_eq!(p.0, 1);
        assert!(t.entries.iter().any(|e| e.kind == EntryKind::SampleReplaced));
        // All replaced entries share one address.
        let replaced: Vec<_> =
            t.entries.iter().filter(|e| e.kind == EntryKind::SampleReplaced).collect();
        assert!(replaced.windows(2).all(|w| w[0].address == w[1].address));
    }

    #[test]
    fn step_executor_matches_blocking_executor_bit_for_bit() {
        // Drive a StepExecutor with the exact request sequence the model
        // makes through the blocking Executor; the traces must be identical.
        let mut m = gaussian_model();
        let mut observes = ObserveMap::new();
        observes.insert("y".to_string(), Value::Real(0.5));
        let seed = 99;
        let blocking = Executor::execute_seeded(&mut m, &mut PriorProposer, &observes, seed);

        let mut step = StepExecutor::new(Box::new(PriorProposer), Arc::new(observes.clone()), seed);
        let mu = step.sample_ext(&Distribution::Normal { mean: 0.0, std: 1.0 }, "mu", true, false);
        step.observe(&Distribution::Normal { mean: mu.as_f64(), std: 0.5 }, "y");
        let (trace, _proposer) = step.finish(mu.clone());

        assert_eq!(trace.entries.len(), blocking.entries.len());
        for (a, b) in trace.entries.iter().zip(&blocking.entries) {
            assert_eq!(a.address, b.address);
            assert_eq!(a.value, b.value);
            assert_eq!(a.log_prob.to_bits(), b.log_prob.to_bits());
            assert_eq!(a.log_q.to_bits(), b.log_q.to_bits());
        }
        assert_eq!(trace.result, blocking.result);
        assert_eq!(trace.log_prior.to_bits(), blocking.log_prior.to_bits());
        assert_eq!(trace.log_likelihood.to_bits(), blocking.log_likelihood.to_bits());
    }

    #[test]
    fn try_execute_surfaces_program_failure() {
        struct FailingProgram;
        impl ProbProgram for FailingProgram {
            fn run(&mut self, ctx: &mut dyn SimCtx) -> Value {
                self.try_run(ctx).expect("transport failed")
            }
            fn try_run(&mut self, _ctx: &mut dyn SimCtx) -> Result<Value, RunError> {
                Err(RunError::new("connection reset by peer"))
            }
        }
        let observes = ObserveMap::new();
        let err =
            Executor::try_execute_seeded(&mut FailingProgram, &mut PriorProposer, &observes, 1)
                .unwrap_err();
        assert!(err.message.contains("connection reset"));
    }

    #[test]
    fn proposal_distribution_scores_log_q() {
        struct Shifted;
        impl Proposer for Shifted {
            fn propose(&mut self, req: &SampleRequest) -> ProposalDecision {
                assert_eq!(req.time_step, 0);
                ProposalDecision::Proposal(Distribution::Normal { mean: 5.0, std: 0.1 })
            }
        }
        let mut m = gaussian_model();
        let mut rng = StdRng::seed_from_u64(1);
        let mut p = Shifted;
        let observes = ObserveMap::new();
        let t = Executor::execute(&mut m, &mut p, &observes, &mut rng);
        let mu = t.value_by_name("mu").unwrap().as_f64();
        assert!(mu > 4.0, "proposal should dominate: {mu}");
        // log_q differs from log_prior because proposal != prior.
        assert!((t.log_q - t.log_prior).abs() > 1.0);
    }
}
