//! # etalumis-core
//!
//! Trace-based probabilistic programming core: the Rust reproduction of the
//! pyprob layer of *Etalumis: Bringing Probabilistic Programming to
//! Scientific Simulators at Scale* (SC'19).
//!
//! The central idea (paper §1, §4.1): an existing stochastic simulator
//! becomes a probabilistic program once its random number draws are routed
//! through a control interface. In this crate:
//!
//! * [`ProbProgram`] — a simulator; its `run` method performs
//!   [`SimCtx`] `sample` / `observe` / `tag` statements.
//! * [`Address`] / [`AddressBuilder`] — unique statement labels built from
//!   scope stacks ("concatenated stack frames") + distribution kind +
//!   instance counters; [`TraceTypeId`] hashes the controlled address
//!   sequence of a trace.
//! * [`Trace`] — one full simulator execution: the unit of inference.
//! * [`Executor`] — runs a program under a [`Proposer`] (prior, MCMC kernel,
//!   or IC neural proposer), conditioning on an [`ObserveMap`], and records
//!   the trace with all log prior/likelihood/proposal masses.
//!
//! Inference engines live in `etalumis-inference`; the cross-process
//! protocol in `etalumis-ppx`; both build exclusively on the interfaces
//! defined here.
//!
//! ## Example
//!
//! ```
//! use etalumis_core::{Executor, FnProgram, SimCtx, SimCtxExt};
//! use etalumis_distributions::{Distribution, Value};
//!
//! let mut model = FnProgram::new("gauss", |ctx: &mut dyn SimCtx| {
//!     let mu = ctx.sample_f64(&Distribution::Normal { mean: 0.0, std: 1.0 }, "mu");
//!     ctx.observe(&Distribution::Normal { mean: mu, std: 0.5 }, "y");
//!     Value::Real(mu)
//! });
//! let trace = Executor::sample_prior(&mut model, 1);
//! assert_eq!(trace.num_controlled(), 1);
//! ```

pub mod address;
pub mod executor;
pub mod program;
pub mod trace;

pub use address::{Address, AddressBuilder, TraceTypeId};
pub use executor::{
    Executor, ObserveMap, PriorProposer, ProposalDecision, Proposer, SampleRequest, StepExecutor,
};
pub use program::{BoxedProgram, FnProgram, ProbProgram, RunError, SimCtx, SimCtxExt};
pub use trace::{EntryKind, Trace, TraceEntry};
