//! Execution traces: the unit of inference.
//!
//! A single sample from any etalumis inference engine is one full run of the
//! simulator (§4.2), recorded as a [`Trace`]: the ordered sample/observe
//! entries, their distributions and values, and the accumulated log
//! prior/likelihood/proposal masses.

use crate::address::{Address, TraceTypeId};
use etalumis_distributions::{Distribution, Value};

/// The role of an entry within a trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EntryKind {
    /// A latent random draw that inference engines may control.
    Sample,
    /// A latent re-draw inside a rejection-sampling loop (`replace = true`);
    /// always proposed from the prior, never trained on (pyprob semantics).
    SampleReplaced,
    /// A conditioning statement: likelihood of observed data.
    Observe,
}

/// One sample/observe statement executed within a trace.
#[derive(Clone, Debug)]
pub struct TraceEntry {
    /// Unique address of the statement within this trace.
    pub address: Address,
    /// The distribution at this site (prior for samples, likelihood for observes).
    pub distribution: Distribution,
    /// The realized value (sampled, proposed, replayed, or observed).
    pub value: Value,
    /// Log-probability of `value` under `distribution`.
    pub log_prob: f64,
    /// Log-probability of `value` under the proposal that produced it
    /// (equals `log_prob` when the value was drawn from the prior).
    pub log_q: f64,
    /// Statement role.
    pub kind: EntryKind,
    /// Human-readable statement name (no uniqueness guarantee).
    pub name: String,
}

impl TraceEntry {
    /// True for entries that inference engines may control (non-replaced samples).
    pub fn is_controlled(&self) -> bool {
        self.kind == EntryKind::Sample
    }
}

/// A recorded execution of a probabilistic program.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// All sample/observe entries in execution order.
    pub entries: Vec<TraceEntry>,
    /// Named deterministic by-products recorded via `tag` (e.g. MET).
    pub tags: Vec<(String, Value)>,
    /// Return value of the program.
    pub result: Value,
    /// Σ log p over all sample entries (controlled + replaced).
    pub log_prior: f64,
    /// Σ log p over all observe entries.
    pub log_likelihood: f64,
    /// Σ log q over all sample entries (proposal mass).
    pub log_q: f64,
}

impl Trace {
    /// Joint log-probability log p(x, y) of the trace.
    pub fn log_joint(&self) -> f64 {
        self.log_prior + self.log_likelihood
    }

    /// Importance weight log w = log p(x,y) - log q(x) for IS-family engines.
    /// For prior proposals this reduces to the log-likelihood.
    pub fn log_weight(&self) -> f64 {
        self.log_joint() - self.log_q
    }

    /// The trace type: hash of the controlled-sample address sequence.
    pub fn trace_type(&self) -> TraceTypeId {
        TraceTypeId::from_addresses(
            self.entries.iter().filter(|e| e.is_controlled()).map(|e| &e.address),
        )
    }

    /// Number of controlled latent variables.
    pub fn num_controlled(&self) -> usize {
        self.entries.iter().filter(|e| e.is_controlled()).count()
    }

    /// Length proxy used for load-balance studies: total entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the trace recorded no statements.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate over controlled entries.
    pub fn controlled(&self) -> impl Iterator<Item = &TraceEntry> {
        self.entries.iter().filter(|e| e.is_controlled())
    }

    /// Find the value recorded at the first entry whose name matches.
    pub fn value_by_name(&self, name: &str) -> Option<&Value> {
        self.entries
            .iter()
            .find(|e| e.name == name)
            .map(|e| &e.value)
            .or_else(|| self.tags.iter().find(|(n, _)| n == name).map(|(_, v)| v))
    }

    /// Find the value recorded at the entry with the given address base
    /// and instance 0 (common case for scalar summaries).
    pub fn value_by_base(&self, base: &str) -> Option<&Value> {
        self.entries
            .iter()
            .find(|e| e.address.base == base && e.address.instance == 0)
            .map(|e| &e.value)
    }

    /// The first observed value (e.g. the detector image), if any.
    pub fn first_observed(&self) -> Option<&Value> {
        self.entries.iter().find(|e| e.kind == EntryKind::Observe).map(|e| &e.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(base: &str, kind: EntryKind, lp: f64, lq: f64) -> TraceEntry {
        TraceEntry {
            address: Address::new(base, 0),
            distribution: Distribution::Normal { mean: 0.0, std: 1.0 },
            value: Value::Real(0.0),
            log_prob: lp,
            log_q: lq,
            kind,
            name: base.to_string(),
        }
    }

    #[test]
    fn weights_compose() {
        let mut t = Trace::default();
        t.entries.push(entry("a", EntryKind::Sample, -1.0, -2.0));
        t.entries.push(entry("b", EntryKind::Observe, -3.0, -3.0));
        t.log_prior = -1.0;
        t.log_likelihood = -3.0;
        t.log_q = -2.0;
        assert_eq!(t.log_joint(), -4.0);
        assert_eq!(t.log_weight(), -2.0);
        assert_eq!(t.num_controlled(), 1);
    }

    #[test]
    fn trace_type_ignores_replaced_and_observes() {
        let mut t1 = Trace::default();
        t1.entries.push(entry("a", EntryKind::Sample, 0.0, 0.0));
        t1.entries.push(entry("r", EntryKind::SampleReplaced, 0.0, 0.0));
        t1.entries.push(entry("o", EntryKind::Observe, 0.0, 0.0));
        let mut t2 = Trace::default();
        t2.entries.push(entry("a", EntryKind::Sample, 0.0, 0.0));
        assert_eq!(t1.trace_type(), t2.trace_type());
    }

    #[test]
    fn lookup_by_name_and_tag() {
        let mut t = Trace::default();
        t.entries.push(entry("x", EntryKind::Sample, 0.0, 0.0));
        t.tags.push(("met".into(), Value::Real(1.5)));
        assert!(t.value_by_name("x").is_some());
        assert_eq!(t.value_by_name("met"), Some(&Value::Real(1.5)));
        assert!(t.value_by_name("nope").is_none());
    }
}
