//! Probabilistic programs and the simulator-side context interface.
//!
//! Anything implementing [`ProbProgram`] is a probabilistic program: a piece
//! of code that, given a [`SimCtx`], performs `sample`/`observe`/`tag`
//! statements and returns a value. This is the paper's central abstraction —
//! an *existing simulator* becomes a probabilistic program once its random
//! number draws are routed through a context (§4.1). Local Rust models call
//! the context directly; `etalumis-ppx` bridges the same interface across
//! process boundaries.

use etalumis_distributions::{Distribution, Value};

/// The interface a running simulation uses to interact with the PPL.
///
/// Implementations decide what value each sample statement receives (prior
/// draw, proposal draw, replayed value, ...) and how observe statements are
/// scored. See `Executor` in this crate for the standard implementation.
pub trait SimCtx {
    /// Draw (or be assigned) a value for a latent random variable.
    ///
    /// * `name` — statement identifier; combined with the current scope
    ///   stack and the distribution kind, it forms the address base.
    /// * `control` — whether inference engines may propose values here.
    /// * `replace` — rejection-sampling re-draw (pyprob `replace=True`):
    ///   shares one address across loop iterations and is always drawn from
    ///   the prior during inference.
    fn sample_ext(
        &mut self,
        dist: &Distribution,
        name: &str,
        control: bool,
        replace: bool,
    ) -> Value;

    /// Condition on data: score the observed value registered for `name`
    /// (inference), or draw a synthetic observation (prior/trace generation).
    /// Returns the value used.
    fn observe(&mut self, dist: &Distribution, name: &str) -> Value;

    /// Record a named deterministic by-product of the simulation (not a
    /// random variable; used for analysis, e.g. missing transverse energy).
    fn tag(&mut self, name: &str, value: Value);

    /// Enter a named scope: addresses of nested statements are prefixed,
    /// mimicking the concatenated stack frames of the C++ front end.
    fn push_scope(&mut self, scope: &str);

    /// Leave the innermost scope.
    fn pop_scope(&mut self);

    /// Sample with a caller-provided, already-fully-qualified address base.
    ///
    /// Used by the PPX server bridge, where the *remote* side constructed the
    /// address; local models normally use [`SimCtx::sample_ext`].
    fn sample_with_address(
        &mut self,
        address_base: &str,
        dist: &Distribution,
        name: &str,
        control: bool,
        replace: bool,
    ) -> Value;

    /// Observe with a caller-provided address base (PPX bridge path).
    fn observe_with_address(
        &mut self,
        address_base: &str,
        dist: &Distribution,
        name: &str,
    ) -> Value;
}

/// Convenience extension methods for model code.
pub trait SimCtxExt: SimCtx {
    /// Sample a controlled latent (the common case).
    fn sample(&mut self, dist: &Distribution, name: &str) -> Value {
        self.sample_ext(dist, name, true, false)
    }

    /// Sample inside a rejection loop (`replace = true`).
    fn sample_replaced(&mut self, dist: &Distribution, name: &str) -> Value {
        self.sample_ext(dist, name, true, true)
    }

    /// Sample a scalar f64 latent.
    fn sample_f64(&mut self, dist: &Distribution, name: &str) -> f64 {
        self.sample(dist, name).as_f64()
    }

    /// Sample an integer latent (categorical index, count, ...).
    fn sample_i64(&mut self, dist: &Distribution, name: &str) -> i64 {
        self.sample(dist, name).as_i64()
    }

    /// Run `f` within a named scope.
    fn scoped<T>(&mut self, scope: &str, f: impl FnOnce(&mut Self) -> T) -> T
    where
        Self: Sized,
    {
        self.push_scope(scope);
        let out = f(self);
        self.pop_scope();
        out
    }
}

impl<T: SimCtx + ?Sized> SimCtxExt for T {}

/// A program execution failed for a reason outside the model's control —
/// in practice, a PPX transport or protocol failure while driving a remote
/// simulator. Local native programs never fail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunError {
    /// Human-readable failure description (carries the transport error).
    pub message: String,
}

impl RunError {
    /// Build an error from anything displayable.
    pub fn new(message: impl std::fmt::Display) -> Self {
        Self { message: message.to_string() }
    }
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "program run failed: {}", self.message)
    }
}

impl std::error::Error for RunError {}

impl From<std::io::Error> for RunError {
    fn from(e: std::io::Error) -> Self {
        RunError::new(e)
    }
}

/// A probabilistic program: a simulator whose randomness flows through a
/// [`SimCtx`].
pub trait ProbProgram {
    /// Execute the program once, returning its result value.
    ///
    /// Panics on transport failure for remote programs; batch runtimes that
    /// must survive individual failures use [`ProbProgram::try_run`].
    fn run(&mut self, ctx: &mut dyn SimCtx) -> Value;

    /// Fallible execution: remote programs surface transport/protocol
    /// failures as a [`RunError`] instead of panicking. Local programs never
    /// fail, hence the default.
    fn try_run(&mut self, ctx: &mut dyn SimCtx) -> Result<Value, RunError> {
        Ok(self.run(ctx))
    }

    /// Human-readable model name (used in handshakes and logs).
    fn name(&self) -> &str {
        "model"
    }
}

/// Boxed programs run transparently, so pooled executors can hold
/// heterogeneous `Box<dyn ProbProgram + Send>` instances (one per worker)
/// and still hand them to every API that takes a `ProbProgram`.
impl<P: ProbProgram + ?Sized> ProbProgram for Box<P> {
    fn run(&mut self, ctx: &mut dyn SimCtx) -> Value {
        (**self).run(ctx)
    }

    fn try_run(&mut self, ctx: &mut dyn SimCtx) -> Result<Value, RunError> {
        (**self).try_run(ctx)
    }

    fn name(&self) -> &str {
        (**self).name()
    }
}

/// A heap-allocated program that can move across threads — the unit a
/// `SimulatorPool` worker owns.
pub type BoxedProgram = Box<dyn ProbProgram + Send>;

/// Wrap a plain function or closure as a [`ProbProgram`].
pub struct FnProgram<F: FnMut(&mut dyn SimCtx) -> Value> {
    f: F,
    name: String,
}

impl<F: FnMut(&mut dyn SimCtx) -> Value> FnProgram<F> {
    /// Wrap `f` under the given model name.
    pub fn new(name: impl Into<String>, f: F) -> Self {
        Self { f, name: name.into() }
    }
}

impl<F: FnMut(&mut dyn SimCtx) -> Value> ProbProgram for FnProgram<F> {
    fn run(&mut self, ctx: &mut dyn SimCtx) -> Value {
        (self.f)(ctx)
    }

    fn name(&self) -> &str {
        &self.name
    }
}
