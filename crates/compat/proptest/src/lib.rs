//! Offline stand-in for `proptest`.
//!
//! Supports the subset of the `proptest!` DSL this workspace's tests use:
//!
//! * `#![proptest_config(ProptestConfig::with_cases(n))]` headers,
//! * parameters bound with `name in strategy` where the strategy is a numeric
//!   range, a character-class regex literal (`"[a-z]{0,10}"`), or
//!   `proptest::collection::vec(strategy, size_range)`,
//! * parameters bound with `name: type` (drawn via [`Arbitrary`]),
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`.
//!
//! Cases are generated from a deterministic per-test seed. There is no
//! shrinking: a failing case panics with the regular assertion message, and
//! the generated inputs can be recovered from the panic (tests here assert
//! exact roundtrips, so the message carries the offending value).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runner configuration; only the case count is meaningful.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate defaults to 256; 64 keeps the seed suites fast while
        // still exercising varied inputs.
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic RNG for a named property test.
#[doc(hidden)]
pub fn __rng_for(test_name: &str) -> StdRng {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    test_name.hash(&mut h);
    StdRng::seed_from_u64(0xE7A1_0000 ^ h.finish())
}

/// A value generator. Unlike the real crate there is no shrinking tree; a
/// strategy just produces values.
pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),+ $(,)?) => {
        $(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )+
    };
}
impl_range_strategy!(f32, f64, usize, u32, u64, i32, i64);

/// String literals act as regex strategies. Only the pattern shape the
/// workspace uses is supported: one character class with an optional
/// `{m}` / `{m,n}` repetition, e.g. `"[a-zA-Z0-9_/\\[\\]]{1,60}"`.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut StdRng) -> String {
        generate_from_class_pattern(self, rng)
    }
}

fn generate_from_class_pattern(pattern: &str, rng: &mut StdRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;

    // Character class.
    assert!(
        i < chars.len() && chars[i] == '[',
        "proptest-compat: only `[class]{{m,n}}` regex strategies are supported, got {pattern:?}"
    );
    i += 1;
    let mut class: Vec<char> = Vec::new();
    while i < chars.len() && chars[i] != ']' {
        let c = if chars[i] == '\\' {
            i += 1;
            assert!(i < chars.len(), "dangling escape in {pattern:?}");
            chars[i]
        } else {
            chars[i]
        };
        // Range like a-z (a '-' with a preceding class member and a
        // following non-']' char).
        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
            let hi = chars[i + 2];
            for code in (c as u32)..=(hi as u32) {
                class.push(char::from_u32(code).unwrap());
            }
            i += 3;
        } else {
            class.push(c);
            i += 1;
        }
    }
    assert!(i < chars.len(), "unterminated class in {pattern:?}");
    i += 1; // consume ']'

    // Repetition.
    let (min, max) = if i < chars.len() && chars[i] == '{' {
        let close = chars[i..].iter().position(|&c| c == '}').expect("unterminated repetition") + i;
        let body: String = chars[i + 1..close].iter().collect();
        let (lo, hi) = match body.split_once(',') {
            Some((lo, hi)) => (lo.trim().parse().unwrap(), hi.trim().parse().unwrap()),
            None => {
                let n: usize = body.trim().parse().unwrap();
                (n, n)
            }
        };
        i = close + 1;
        (lo, hi)
    } else {
        (1, 1)
    };
    assert!(i == chars.len(), "trailing pattern syntax unsupported in {pattern:?}");
    assert!(!class.is_empty(), "empty character class in {pattern:?}");

    let len = if min == max { min } else { rng.gen_range(min..=max) };
    (0..len).map(|_| class[rng.gen_range(0..class.len())]).collect()
}

pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;

    /// Strategy for `Vec<S::Value>` with a length drawn from `sizes`.
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    pub fn vec<S: Strategy>(element: S, sizes: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(sizes.start < sizes.end, "empty size range");
        VecStrategy { element, min: sizes.start, max: sizes.end - 1 }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.min..=self.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Types drawable without an explicit strategy (`name: type` parameters).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen::<bool>()
    }
}

macro_rules! impl_arbitrary_num {
    ($($t:ty),+ $(,)?) => {
        $(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> Self {
                    rng.gen::<u64>() as $t
                }
            }
        )+
    };
}
impl_arbitrary_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// The `proptest!` block: an optional config header followed by test
/// functions whose parameters are generated per case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!((<$crate::ProptestConfig as ::core::default::Default>::default()); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr); ) => {};
    (($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($params:tt)*) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::__rng_for(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.cases {
                $crate::__proptest_bind!(__rng; $($params)*);
                $body
            }
        }
        $crate::__proptest_fns!(($cfg); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident; ) => {};
    ($rng:ident; $name:ident : $ty:ty $(, $($rest:tt)*)?) => {
        let $name: $ty = <$ty as $crate::Arbitrary>::arbitrary(&mut $rng);
        $($crate::__proptest_bind!($rng; $($rest)*);)?
    };
    ($rng:ident; $pat:pat in $strat:expr $(, $($rest:tt)*)?) => {
        let $pat = $crate::Strategy::generate(&($strat), &mut $rng);
        $($crate::__proptest_bind!($rng; $($rest)*);)?
    };
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::__rng_for;
    use crate::prelude::*;

    #[test]
    fn regex_subset_generates_in_class() {
        let mut rng = __rng_for("regex_subset");
        for _ in 0..500 {
            let s = crate::Strategy::generate(&"[a-zA-Z0-9_/\\[\\]]{1,60}", &mut rng);
            assert!((1..=60).contains(&s.chars().count()), "{s:?}");
            assert!(s
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '/' | '[' | ']')));
        }
        let s = crate::Strategy::generate(&"[xyz]{0,3}", &mut rng);
        assert!(s.chars().count() <= 3);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_binds_all_param_forms(
            x in 0u64..100,
            v in collection::vec(-1.0f64..1.0, 1..5),
            s in "[ab]{2,4}",
            flag: bool,
        ) {
            prop_assert!(x < 100);
            prop_assert!((1..5).contains(&v.len()));
            prop_assert!(v.iter().all(|y| (-1.0..1.0).contains(y)));
            prop_assert!((2..=4).contains(&s.len()));
            prop_assert_eq!(flag || !flag, true);
        }
    }
}
