//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this crate implements
//! exactly the API surface the workspace uses — `Rng`, `SeedableRng`,
//! `rngs::StdRng`, and `seq::SliceRandom` — over a xoshiro256++ generator.
//! Streams are deterministic per seed (which the seed tests rely on) but are
//! NOT the same streams as the real `rand` crate.

/// A source of random 64-bit words. Object-safe; everything else is derived.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let w = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be drawn uniformly from an RNG via [`Rng::gen`].
pub trait Standard: Sized {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`]. Parameterized over the output type
/// (as in the real crate) so that an unsuffixed literal range like
/// `-0.1..0.1` unifies with the expected element type instead of defaulting
/// to `f64`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_float_range {
    ($t:ty) => {
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                self.start + <$t as Standard>::draw(rng) * (self.end - self.start)
            }
        }
    };
}
impl_float_range!(f32);
impl_float_range!(f64);

macro_rules! impl_int_range {
    // $u is $t's unsigned twin: a signed span must pass through it before
    // widening to u64, otherwise `as u64` sign-extends spans > $t::MAX.
    ($t:ty, $u:ty) => {
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = self.end.wrapping_sub(self.start) as $u as u64;
                // Multiply-shift bounded sampling (Lemire); bias is negligible
                // for the span sizes used in this workspace.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start.wrapping_add(hi as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end.wrapping_sub(start) as $u as u128) + 1;
                let hi = ((rng.next_u64() as u128 * span) >> 64) as u64;
                start.wrapping_add(hi as $t)
            }
        }
    };
}
impl_int_range!(usize, usize);
impl_int_range!(u64, u64);
impl_int_range!(u32, u32);
impl_int_range!(i64, u64);
impl_int_range!(i32, u32);

/// The user-facing random-value interface, blanket-implemented for every
/// [`RngCore`] exactly as in the real crate.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        <f64 as Standard>::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 state expansion, the standard seeding procedure for
            // the xoshiro family.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling, the only piece of `rand::seq` the workspace uses.
    pub trait SliceRandom {
        type Item;
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
        fn choose<'a, R: Rng + ?Sized>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                let j = (RngCore::next_u64(rng) % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<'a, R: Rng + ?Sized>(&'a self, rng: &mut R) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                let i = (RngCore::next_u64(rng) % self.len() as u64) as usize;
                self.get(i)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x = rng.gen_range(-1.5f32..2.5);
            assert!((-1.5..2.5).contains(&x));
            let i = rng.gen_range(3usize..10);
            assert!((3..10).contains(&i));
        }
    }

    #[test]
    fn gen_range_signed_spans_wider_than_type_max() {
        // Regression: a signed span > $t::MAX must not sign-extend when
        // widened to u64 (that produced out-of-range samples).
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let x = rng.gen_range(-2_000_000_000i32..2_000_000_000);
            assert!((-2_000_000_000..2_000_000_000).contains(&x), "{x}");
            let y = rng.gen_range(i64::MIN..i64::MAX);
            assert!(y < i64::MAX);
            let z = rng.gen_range(i32::MIN..=i32::MAX);
            let _ = z; // full-width inclusive range must not overflow
        }
    }

    #[test]
    fn uniformity_rough() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in order (astronomically unlikely)");
    }
}
