//! Offline stand-in for `bytes`.
//!
//! `BytesMut` is a growable byte buffer over `Vec<u8>`; `BufMut` provides the
//! little-endian `put_*` writers and `Buf` the `get_*` readers (implemented
//! for `&[u8]`, consuming from the front) — exactly the surface the wire
//! codec and shard files use. No refcounted splitting; none of the call sites
//! need it.

use std::ops::{Deref, DerefMut};

/// Growable byte buffer (the write half of the codec paths).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut { inner: Vec::new() }
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { inner: Vec::with_capacity(cap) }
    }

    pub fn len(&self) -> usize {
        self.inner.len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    pub fn reserve(&mut self, additional: usize) {
        self.inner.reserve(additional);
    }

    pub fn clear(&mut self) {
        self.inner.clear();
    }

    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }

    /// Consume into the underlying vector (the nearest equivalent of
    /// `freeze()` for our purposes).
    pub fn to_vec(&self) -> Vec<u8> {
        self.inner.clone()
    }

    pub fn freeze(self) -> Vec<u8> {
        self.inner
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(v: Vec<u8>) -> Self {
        BytesMut { inner: v }
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(b: BytesMut) -> Vec<u8> {
        b.inner
    }
}

macro_rules! put_le {
    ($($name:ident: $t:ty),+ $(,)?) => {
        $(
            fn $name(&mut self, v: $t) {
                self.put_slice(&v.to_le_bytes());
            }
        )+
    };
}

/// Little-endian writers.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    put_le! {
        put_u16_le: u16,
        put_u32_le: u32,
        put_u64_le: u64,
        put_i32_le: i32,
        put_i64_le: i64,
        put_f32_le: f32,
        put_f64_le: f64,
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

macro_rules! get_le {
    ($($name:ident: $t:ty = $n:expr),+ $(,)?) => {
        $(
            fn $name(&mut self) -> $t {
                let mut b = [0u8; $n];
                self.copy_to_slice(&mut b);
                <$t>::from_le_bytes(b)
            }
        )+
    };
}

/// Little-endian readers over a shrinking front cursor. Panics on underflow,
/// matching the real crate.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn copy_to_slice(&mut self, dst: &mut [u8]);
    fn advance(&mut self, cnt: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    get_le! {
        get_u16_le: u16 = 2,
        get_u32_le: u32 = 4,
        get_u64_le: u64 = 8,
        get_i32_le: i32 = 4,
        get_i64_le: i64 = 8,
        get_f32_le: f32 = 4,
        get_f64_le: f64 = 8,
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.len() >= dst.len(), "buffer underflow");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }

    fn advance(&mut self, cnt: usize) {
        assert!(self.len() >= cnt, "buffer underflow");
        *self = &self[cnt..];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut buf = BytesMut::with_capacity(64);
        buf.put_u8(7);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(u64::MAX - 3);
        buf.put_i64_le(-42);
        buf.put_f32_le(1.5);
        buf.put_f64_le(-2.25);
        buf.put_slice(b"xyz");

        let mut r: &[u8] = &buf;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), u64::MAX - 3);
        assert_eq!(r.get_i64_le(), -42);
        assert_eq!(r.get_f32_le(), 1.5);
        assert_eq!(r.get_f64_le(), -2.25);
        let mut tail = [0u8; 3];
        r.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xyz");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn advance_consumes() {
        let data = [1u8, 2, 3, 4, 5];
        let mut r: &[u8] = &data;
        r.advance(2);
        assert_eq!(r.get_u8(), 3);
        assert_eq!(r.remaining(), 2);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut r: &[u8] = &[1u8, 2];
        r.get_u32_le();
    }
}
