//! Offline stand-in for `rayon`.
//!
//! Implements the parallel-iterator subset the workspace uses —
//! `par_chunks_mut`, `into_par_iter` on ranges and vectors, with
//! `map`/`enumerate`/`for_each`/`collect` — executing on scoped OS threads
//! with **shared-queue dynamic scheduling**: workers claim fixed-size chunks
//! of the item sequence from a shared queue, so a thread that draws cheap
//! items keeps claiming more instead of idling behind a straggler (the
//! load-balancing failure mode of static block partitioning). Output order
//! is preserved regardless of which worker computes which chunk. Not a
//! deque-based work-stealing pool like real rayon — for batched trace
//! generation use `etalumis-runtime` — but within noise of one on the
//! chunk-uniform workloads `par_iter` carries here.

use std::num::NonZeroUsize;
use std::sync::Mutex;

/// Number of worker threads: `RAYON_NUM_THREADS` if set, else the number of
/// available cores.
pub fn current_num_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
}

/// Lock a mutex, recovering from poisoning (a panicking sibling worker is
/// already being propagated by the thread scope).
fn lock_ok<U>(m: &Mutex<U>) -> std::sync::MutexGuard<'_, U> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Evaluate `f` over `items` on up to [`current_num_threads`] scoped
/// threads, preserving input order in the output.
///
/// Dynamic scheduling: the items are pre-split into chunks of
/// `len / (threads * 8)` (≥ 1) elements tagged with their start offset;
/// workers repeatedly claim the next chunk from a shared queue until it is
/// drained, and completed `(offset, results)` pairs are reassembled in
/// offset order. Plain `Vec` ownership throughout, so a panicking closure
/// drops every pending element normally.
fn par_map_vec<T, R, F>(items: Vec<T>, f: &F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let len = items.len();
    let threads = current_num_threads().min(len.max(1));
    if threads <= 1 || len <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk = (len / (threads * 8)).max(1);

    let mut chunks: Vec<(usize, Vec<T>)> = Vec::with_capacity(len.div_ceil(chunk));
    let mut it = items.into_iter();
    let mut offset = 0;
    loop {
        let part: Vec<T> = it.by_ref().take(chunk).collect();
        if part.is_empty() {
            break;
        }
        offset += part.len();
        chunks.push((offset - part.len(), part));
    }
    let queue = Mutex::new(chunks.into_iter());
    let done: Mutex<Vec<(usize, Vec<R>)>> = Mutex::new(Vec::with_capacity(len.div_ceil(chunk)));

    std::thread::scope(|s| {
        for _ in 0..threads {
            let queue = &queue;
            let done = &done;
            s.spawn(move || loop {
                let Some((start, part)) = lock_ok(queue).next() else { break };
                let results: Vec<R> = part.into_iter().map(f).collect();
                lock_ok(done).push((start, results));
            });
        }
    });

    let mut parts = done.into_inner().unwrap_or_else(|e| e.into_inner());
    parts.sort_unstable_by_key(|&(start, _)| start);
    let mut out = Vec::with_capacity(len);
    for (_, part) in parts {
        out.extend(part);
    }
    out
}

/// A parallel iterator: a finite, order-preserving item sequence whose
/// transformation is evaluated on multiple threads at the terminal operation
/// (`for_each` / `collect`).
pub trait ParallelIterator: Sized {
    type Item: Send;

    /// Evaluate the chain, in parallel where a `map` is present.
    fn run(self) -> Vec<Self::Item>;

    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync,
    {
        Map { base: self, f }
    }

    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { base: self }
    }

    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync,
    {
        // `run()` materializes the (cheap) item list; apply `f` in parallel.
        let items = self.run();
        par_map_vec(items, &|item| f(item));
    }

    fn collect<C: FromIterator<Self::Item>>(self) -> C {
        self.run().into_iter().collect()
    }

    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item>,
    {
        self.run().into_iter().sum()
    }

    fn count(self) -> usize {
        self.run().len()
    }
}

/// Adapter produced by [`ParallelIterator::map`]; its `run` is the parallel
/// evaluation point.
pub struct Map<I, F> {
    base: I,
    f: F,
}

impl<I, R, F> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    R: Send,
    F: Fn(I::Item) -> R + Sync,
{
    type Item = R;

    fn run(self) -> Vec<R> {
        par_map_vec(self.base.run(), &self.f)
    }
}

/// Adapter produced by [`ParallelIterator::enumerate`].
pub struct Enumerate<I> {
    base: I,
}

impl<I: ParallelIterator> ParallelIterator for Enumerate<I> {
    type Item = (usize, I::Item);

    fn run(self) -> Vec<(usize, I::Item)> {
        self.base.run().into_iter().enumerate().collect()
    }
}

/// Base iterator over an already-materialized item list.
pub struct IntoParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for IntoParIter<T> {
    type Item = T;

    fn run(self) -> Vec<T> {
        self.items
    }
}

/// Conversion into a parallel iterator (`(0..n).into_par_iter()`,
/// `vec.into_par_iter()`).
pub trait IntoParallelIterator {
    type Item: Send;
    type Iter: ParallelIterator<Item = Self::Item>;
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = IntoParIter<T>;
    fn into_par_iter(self) -> IntoParIter<T> {
        IntoParIter { items: self }
    }
}

macro_rules! impl_range_into_par {
    ($t:ty) => {
        impl IntoParallelIterator for std::ops::Range<$t> {
            type Item = $t;
            type Iter = IntoParIter<$t>;
            fn into_par_iter(self) -> IntoParIter<$t> {
                IntoParIter { items: self.collect() }
            }
        }
    };
}
impl_range_into_par!(usize);
impl_range_into_par!(u64);
impl_range_into_par!(u32);
impl_range_into_par!(i64);
impl_range_into_par!(i32);

/// `par_chunks_mut` / `par_chunks` over slices.
pub trait ParallelSliceMut<T: Send> {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> IntoParIter<&mut [T]>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> IntoParIter<&mut [T]> {
        assert!(chunk_size > 0, "chunk size must be non-zero");
        IntoParIter { items: self.chunks_mut(chunk_size).collect() }
    }
}

pub trait ParallelSlice<T: Sync> {
    fn par_chunks(&self, chunk_size: usize) -> IntoParIter<&[T]>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> IntoParIter<&[T]> {
        assert!(chunk_size > 0, "chunk size must be non-zero");
        IntoParIter { items: self.chunks(chunk_size).collect() }
    }
}

pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelIterator, ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..1000usize).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn chunks_mut_writes_all() {
        let mut data = vec![0u32; 1003];
        data.par_chunks_mut(10).enumerate().for_each(|(i, chunk)| {
            for x in chunk.iter_mut() {
                *x = i as u32 + 1;
            }
        });
        assert!(data.iter().all(|&x| x > 0));
        assert_eq!(data[25], 3);
        assert_eq!(data[1002], 101);
    }

    #[test]
    fn for_each_runs_every_item() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let hits = AtomicUsize::new(0);
        (0..257u64).into_par_iter().for_each(|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 257);
    }

    #[test]
    fn sum_matches_sequential() {
        let s: u64 = (0..10_000u64).into_par_iter().map(|i| i * 2).sum::<u64>() / 2;
        assert_eq!(s, (0..10_000u64).sum::<u64>());
    }

    #[test]
    fn every_input_consumed_exactly_once() {
        use std::sync::Arc;
        // Count drops of the *inputs*: each must be consumed exactly once by
        // the dynamic scheduler.
        let token = Arc::new(());
        let items: Vec<Arc<()>> = (0..1001).map(|_| Arc::clone(&token)).collect();
        assert_eq!(Arc::strong_count(&token), 1002);
        let lens: Vec<usize> =
            items.into_par_iter().map(|a| Arc::strong_count(&a).min(1)).collect();
        assert_eq!(lens.len(), 1001);
        // All worker-side clones consumed; only `token` itself remains.
        assert_eq!(Arc::strong_count(&token), 1);
    }

    #[test]
    fn panicking_closure_drops_all_pending_inputs() {
        use std::sync::Arc;
        let token = Arc::new(());
        let items: Vec<(usize, Arc<()>)> = (0..500).map(|i| (i, Arc::clone(&token))).collect();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _: Vec<usize> = items
                .into_par_iter()
                .map(|(i, _guard)| {
                    assert!(i != 250, "boom");
                    i
                })
                .collect();
        }));
        assert!(result.is_err(), "panic should propagate");
        // No leaks: every queued, processed, or pending clone was dropped.
        assert_eq!(Arc::strong_count(&token), 1);
    }

    #[test]
    fn skewed_work_is_claimed_by_multiple_chunks_in_order() {
        // Items where cost grows with index: the dynamic cursor keeps the
        // output ordered even though chunks finish wildly out of order.
        let n = 4096usize;
        let out: Vec<usize> = (0..n)
            .into_par_iter()
            .map(|i| {
                let spin = if i < 8 { 20_000 } else { 10 };
                let mut acc = 0usize;
                for k in 0..spin {
                    acc = acc.wrapping_add(k ^ i);
                }
                std::hint::black_box(acc);
                i
            })
            .collect();
        assert_eq!(out, (0..n).collect::<Vec<_>>());
    }
}
