//! Offline stand-in for `crossbeam`.
//!
//! Only `crossbeam::channel::{unbounded, Sender, Receiver, TryRecvError}` is
//! used by the workspace (the in-process PPX transports, blocking and
//! non-blocking), and `std::sync::mpsc` has the exact semantics those call
//! sites need: unbounded buffering, blocking `recv`, non-blocking `try_recv`
//! distinguishing empty from disconnected, and errors on peer disconnect.

pub mod channel {
    pub use std::sync::mpsc::{Receiver, RecvError, SendError, Sender, TryRecvError};

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    use super::channel::unbounded;

    #[test]
    fn send_recv() {
        let (tx, rx) = unbounded();
        tx.send(5u32).unwrap();
        assert_eq!(rx.recv().unwrap(), 5);
    }

    #[test]
    fn disconnect_errors_both_ways() {
        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert!(tx.send(1).is_err());
        let (tx2, rx2) = unbounded::<u8>();
        drop(tx2);
        assert!(rx2.recv().is_err());
    }
}
