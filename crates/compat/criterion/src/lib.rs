//! Offline stand-in for `criterion`.
//!
//! Implements the subset the workspace's benches use — `Criterion`,
//! `benchmark_group` with `sample_size`/`measurement_time`/`bench_function`/
//! `finish`, `Bencher::iter`, and the `criterion_group!`/`criterion_main!`
//! macros — as a simple wall-clock harness. Each sample runs the closure in
//! a calibrated batch and reports min/mean/max plus median ± standard
//! deviation nanoseconds per iteration, and the sample × iteration counts,
//! so run-to-run deltas on the same machine are interpretable. Passing
//! `-- --quick` (mirroring real criterion) caps sampling for CI smoke runs.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver, one per `criterion_group!` function.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20, measurement_time: Duration::from_secs(3), quick: false }
    }
}

impl Criterion {
    /// CLI configuration: honors `--quick` (capped sampling, the CI smoke
    /// mode); other flags (`--bench` etc.) are accepted and ignored.
    pub fn configure_from_args(mut self) -> Self {
        self.quick = std::env::args().any(|a| a == "--quick");
        self
    }

    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            quick: self.quick,
            _parent: std::marker::PhantomData,
        }
    }

    /// Run a single benchmark outside a group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        let measurement_time = self.measurement_time;
        run_one("", id, sample_size, measurement_time, self.quick, f);
        self
    }
}

/// A named group of related benchmarks sharing sampling configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    quick: bool,
    _parent: std::marker::PhantomData<&'a mut Criterion>,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.name, id, self.sample_size, self.measurement_time, self.quick, f);
        self
    }

    pub fn finish(self) {}
}

/// Summary statistics over per-iteration sample times (nanoseconds).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SampleStats {
    pub min: f64,
    pub mean: f64,
    pub max: f64,
    pub median: f64,
    pub std_dev: f64,
}

impl SampleStats {
    /// Compute stats from raw samples (need not be sorted).
    pub fn from_samples(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return SampleStats { min: 0.0, mean: 0.0, max: 0.0, median: 0.0, std_dev: 0.0 };
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        let n = sorted.len();
        let mean = sorted.iter().sum::<f64>() / n as f64;
        let median =
            if n % 2 == 1 { sorted[n / 2] } else { 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]) };
        let var = sorted.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        SampleStats { min: sorted[0], mean, max: sorted[n - 1], median, std_dev: var.sqrt() }
    }
}

fn run_one<F>(
    group: &str,
    id: &str,
    mut sample_size: usize,
    mut measurement_time: Duration,
    quick: bool,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    let label = if group.is_empty() { id.to_string() } else { format!("{group}/{id}") };
    if quick {
        sample_size = sample_size.min(5);
        measurement_time = measurement_time.min(Duration::from_millis(250));
    }

    // Calibration pass: how many iterations fit in ~1/sample_size of the
    // measurement budget?
    let mut bencher = Bencher { iters: 1, elapsed: Duration::ZERO };
    f(&mut bencher);
    let per_iter = bencher.elapsed.max(Duration::from_nanos(1));
    let budget = measurement_time.as_secs_f64() / sample_size as f64;
    let iters_per_sample = (budget / per_iter.as_secs_f64()).clamp(1.0, 1e9) as u64;

    let mut samples_ns: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher { iters: iters_per_sample, elapsed: Duration::ZERO };
        f(&mut b);
        samples_ns.push(b.elapsed.as_secs_f64() * 1e9 / iters_per_sample as f64);
    }
    let stats = SampleStats::from_samples(&samples_ns);
    // etalumis: allow(logging, reason = "criterion-style console reporter output")
    println!(
        "{label:<40} time: [{} {} {}]  median {} ± {}  ({} samples x {} iters)",
        fmt_ns(stats.min),
        fmt_ns(stats.mean),
        fmt_ns(stats.max),
        fmt_ns(stats.median),
        fmt_ns(stats.std_dev),
        sample_size,
        iters_per_sample,
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.3} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.3} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Passed to the benchmark closure; times the routine under test.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

#[cfg(test)]
mod tests {
    use super::SampleStats;

    #[test]
    fn stats_on_known_samples() {
        let s = SampleStats::from_samples(&[4.0, 1.0, 3.0, 2.0]);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.median, 2.5);
        // population std dev of 1..4 = sqrt(1.25)
        assert!((s.std_dev - 1.25f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn stats_odd_count_median_is_middle() {
        let s = SampleStats::from_samples(&[10.0, 30.0, 20.0]);
        assert_eq!(s.median, 20.0);
    }

    #[test]
    fn stats_empty_is_zeroed() {
        let s = SampleStats::from_samples(&[]);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.std_dev, 0.0);
    }
}

/// Mirrors `criterion::criterion_group!`: bundles bench functions into one
/// runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            $(
                let mut c = $crate::Criterion::default().configure_from_args();
                $target(&mut c);
            )+
        }
    };
}

/// Mirrors `criterion::criterion_main!`: emits `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
