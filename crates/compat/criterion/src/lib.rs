//! Offline stand-in for `criterion`.
//!
//! Implements the subset the workspace's benches use — `Criterion`,
//! `benchmark_group` with `sample_size`/`measurement_time`/`bench_function`/
//! `finish`, `Bencher::iter`, and the `criterion_group!`/`criterion_main!`
//! macros — as a simple wall-clock harness. Each sample runs the closure in a
//! calibrated batch and reports mean/min/max nanoseconds per iteration to
//! stdout. No statistics beyond that; the numbers are comparable run-to-run
//! on the same machine, which is what the bench trajectory needs.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver, one per `criterion_group!` function.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20, measurement_time: Duration::from_secs(3) }
    }
}

impl Criterion {
    /// Hook for CLI configuration; accepted and ignored (`--bench` etc. are
    /// already filtered by the harness).
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            _parent: std::marker::PhantomData,
        }
    }

    /// Run a single benchmark outside a group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        let measurement_time = self.measurement_time;
        run_one("", id, sample_size, measurement_time, f);
        self
    }
}

/// A named group of related benchmarks sharing sampling configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    _parent: std::marker::PhantomData<&'a mut Criterion>,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.name, id, self.sample_size, self.measurement_time, f);
        self
    }

    pub fn finish(self) {}
}

fn run_one<F>(group: &str, id: &str, sample_size: usize, measurement_time: Duration, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let label = if group.is_empty() { id.to_string() } else { format!("{group}/{id}") };

    // Calibration pass: how many iterations fit in ~1/sample_size of the
    // measurement budget?
    let mut bencher = Bencher { iters: 1, elapsed: Duration::ZERO };
    f(&mut bencher);
    let per_iter = bencher.elapsed.max(Duration::from_nanos(1));
    let budget = measurement_time.as_secs_f64() / sample_size as f64;
    let iters_per_sample = (budget / per_iter.as_secs_f64()).clamp(1.0, 1e9) as u64;

    let mut samples_ns: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher { iters: iters_per_sample, elapsed: Duration::ZERO };
        f(&mut b);
        samples_ns.push(b.elapsed.as_secs_f64() * 1e9 / iters_per_sample as f64);
    }
    samples_ns.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mean = samples_ns.iter().sum::<f64>() / samples_ns.len() as f64;
    let min = samples_ns.first().copied().unwrap_or(0.0);
    let max = samples_ns.last().copied().unwrap_or(0.0);
    println!(
        "{label:<40} time: [{} {} {}]  ({} samples x {} iters)",
        fmt_ns(min),
        fmt_ns(mean),
        fmt_ns(max),
        sample_size,
        iters_per_sample,
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.3} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.3} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Passed to the benchmark closure; times the routine under test.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Mirrors `criterion::criterion_group!`: bundles bench functions into one
/// runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            $(
                let mut c = $crate::Criterion::default().configure_from_args();
                $target(&mut c);
            )+
        }
    };
}

/// Mirrors `criterion::criterion_main!`: emits `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
