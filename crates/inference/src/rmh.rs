//! Single-site random-walk / lightweight Metropolis–Hastings in trace space.
//!
//! The paper's baseline engine (§4.2): "MCMC in the RMH variety, which
//! provides a high-compute-cost sequential algorithm with statistical
//! guarantees to closely approximate the posterior". One MCMC state is a
//! full execution trace; a transition picks one controlled sample statement,
//! perturbs its value (truncated-normal random walk for continuous sites,
//! prior resampling for discrete sites — set `prior_kernel` for pure LMH),
//! replays the rest of the trace where addresses still match, and accepts
//! with the Wingate-style lightweight-MH ratio that accounts for entries
//! entering and leaving the trace.
//!
//! Rejection-loop (`replace = true`) draws are re-sampled from the prior at
//! every re-execution, exactly as in pyprob; their prior mass cancels
//! between target and proposal and is excluded from the ratio.

use crate::posterior::WeightedTraces;
use etalumis_core::{
    Address, Executor, ObserveMap, PriorProposer, ProbProgram, ProposalDecision, Proposer,
    SampleRequest, Trace,
};
use etalumis_distributions::{Distribution, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, HashSet};

/// RMH configuration.
#[derive(Clone, Debug)]
pub struct RmhConfig {
    /// Total MCMC iterations (including burn-in).
    pub iterations: usize,
    /// Iterations discarded from the front of the chain.
    pub burn_in: usize,
    /// Keep every `thin`-th post-burn-in state.
    pub thin: usize,
    /// RNG seed.
    pub seed: u64,
    /// Random-walk kernel scale, as a fraction of the prior std / support.
    pub rw_scale: f64,
    /// Use prior resampling at the chosen site (lightweight MH) instead of a
    /// random walk.
    pub prior_kernel: bool,
}

impl Default for RmhConfig {
    fn default() -> Self {
        Self {
            iterations: 10_000,
            burn_in: 1_000,
            thin: 1,
            seed: 0,
            rw_scale: 0.25,
            prior_kernel: false,
        }
    }
}

/// Summary of one RMH run.
#[derive(Debug)]
pub struct RmhStats {
    /// Accepted transitions.
    pub accepted: usize,
    /// Proposed transitions.
    pub proposed: usize,
    /// Total simulator executions (= proposed + 1).
    pub simulator_calls: usize,
}

impl RmhStats {
    /// Fraction of proposals accepted.
    pub fn acceptance_rate(&self) -> f64 {
        if self.proposed == 0 {
            0.0
        } else {
            self.accepted as f64 / self.proposed as f64
        }
    }
}

/// Replays an old trace with one site changed.
struct MhProposer {
    old_values: HashMap<Address, Value>,
    site: Address,
    site_value: Value,
    replayed: HashSet<Address>,
}

impl Proposer for MhProposer {
    fn propose(&mut self, req: &SampleRequest) -> ProposalDecision {
        if *req.address == self.site {
            return ProposalDecision::Replay(self.site_value.clone());
        }
        if let Some(v) = self.old_values.get(req.address) {
            if req.dist.log_prob(v) > f64::NEG_INFINITY {
                self.replayed.insert(req.address.clone());
                return ProposalDecision::Replay(v.clone());
            }
        }
        ProposalDecision::Prior
    }
}

/// Controlled-entry score: Σ log p over controlled samples + log-likelihood.
/// Replaced (rejection-loop) entries are excluded — their fresh prior mass
/// cancels between target and proposal.
fn score(trace: &Trace) -> f64 {
    trace.controlled().map(|e| e.log_prob).sum::<f64>() + trace.log_likelihood
}

/// Propose a new value at a site. Returns (value, log K(new|old), log K(old|new)).
fn site_kernel(
    dist: &Distribution,
    current: &Value,
    rw_scale: f64,
    prior_kernel: bool,
    rng: &mut StdRng,
) -> (Value, f64, f64) {
    if prior_kernel || dist.is_discrete() {
        // Independent prior resampling at the site.
        let new = dist.sample(rng);
        let fwd = dist.log_prob(&new);
        let bwd = dist.log_prob(current);
        return (new, fwd, bwd);
    }
    match dist.support() {
        Some((lo, hi)) => {
            let scale = rw_scale * (hi - lo);
            let cur = current.as_f64();
            let k_fwd = Distribution::TruncatedNormal { mean: cur, std: scale, low: lo, high: hi };
            let new = k_fwd.sample(rng);
            let fwd = k_fwd.log_prob(&new);
            let k_bwd =
                Distribution::TruncatedNormal { mean: new.as_f64(), std: scale, low: lo, high: hi };
            let bwd = k_bwd.log_prob(current);
            (new, fwd, bwd)
        }
        None => {
            let scale = (rw_scale * dist.std()).max(1e-6);
            let cur = current.as_f64();
            let k = Distribution::Normal { mean: cur, std: scale };
            let new = k.sample(rng);
            let fwd = k.log_prob(&new);
            let k_bwd = Distribution::Normal { mean: new.as_f64(), std: scale };
            let bwd = k_bwd.log_prob(current);
            (new, fwd, bwd)
        }
    }
}

/// Run RMH, invoking `visit` on every post-burn-in kept state.
///
/// The callback form avoids storing full traces (tau traces hold the voxel
/// observation); use [`rmh`] to collect them when memory allows.
pub fn rmh_with_callback(
    program: &mut dyn ProbProgram,
    observes: &ObserveMap,
    config: &RmhConfig,
    mut visit: impl FnMut(usize, &Trace),
) -> RmhStats {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut prior = PriorProposer;
    let mut current = Executor::execute(program, &mut prior, observes, &mut rng);
    let mut stats = RmhStats { accepted: 0, proposed: 0, simulator_calls: 1 };
    for it in 0..config.iterations {
        let controlled: Vec<usize> = current
            .entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.is_controlled())
            .map(|(i, _)| i)
            .collect();
        let proposed_trace = if controlled.is_empty() {
            // No controlled sites: independence move from the prior,
            // accepted on the likelihood ratio.
            let mut p = PriorProposer;
            let cand = Executor::execute(program, &mut p, observes, &mut rng);
            stats.simulator_calls += 1;
            stats.proposed += 1;
            let log_alpha = cand.log_likelihood - current.log_likelihood;
            if rng.gen::<f64>().ln() < log_alpha {
                stats.accepted += 1;
                Some(cand)
            } else {
                None
            }
        } else {
            let k = controlled[rng.gen_range(0..controlled.len())];
            let entry = &current.entries[k];
            let (new_value, fwd_lq, bwd_lq) = site_kernel(
                &entry.distribution,
                &entry.value,
                config.rw_scale,
                config.prior_kernel,
                &mut rng,
            );
            let site = entry.address.clone();
            let old_values: HashMap<Address, Value> =
                current.controlled().map(|e| (e.address.clone(), e.value.clone())).collect();
            let num_old = old_values.len();
            let mut mh = MhProposer {
                old_values,
                site: site.clone(),
                site_value: new_value,
                replayed: HashSet::new(),
            };
            let cand = Executor::execute(program, &mut mh, observes, &mut rng);
            stats.simulator_calls += 1;
            stats.proposed += 1;
            // Fresh mass: controlled entries of the candidate that were newly
            // drawn from the prior (not replayed, not the site).
            let mut fresh = 0.0;
            let mut new_addrs: HashSet<&Address> = HashSet::new();
            for e in cand.controlled() {
                new_addrs.insert(&e.address);
                if e.address != site && !mh.replayed.contains(&e.address) {
                    fresh += e.log_prob;
                }
            }
            // Stale mass: controlled entries of the current trace that were
            // not carried over (address gone, or value not replayable).
            let mut stale = 0.0;
            for e in current.controlled() {
                if e.address != site
                    && (!new_addrs.contains(&e.address) || !mh.replayed.contains(&e.address))
                {
                    stale += e.log_prob;
                }
            }
            let num_new = cand.num_controlled();
            let log_alpha = score(&cand) - score(&current) + (num_old as f64).ln()
                - (num_new as f64).ln()
                + bwd_lq
                - fwd_lq
                + stale
                - fresh;
            if rng.gen::<f64>().ln() < log_alpha {
                stats.accepted += 1;
                Some(cand)
            } else {
                None
            }
        };
        if let Some(t) = proposed_trace {
            current = t;
        }
        if it >= config.burn_in && (it - config.burn_in) % config.thin.max(1) == 0 {
            visit(it, &current);
        }
    }
    stats
}

/// Run RMH and collect kept traces into a [`WeightedTraces`] (uniform weights).
pub fn rmh(
    program: &mut dyn ProbProgram,
    observes: &ObserveMap,
    config: &RmhConfig,
) -> (WeightedTraces, RmhStats) {
    let mut kept = Vec::new();
    let stats = rmh_with_callback(program, observes, config, |_, t| kept.push(t.clone()));
    (WeightedTraces::unweighted(kept), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use etalumis_simulators::{BranchingModel, GaussianUnknownMean, RejectionModel};

    fn observe(name: &str, v: f64) -> ObserveMap {
        let mut m = ObserveMap::new();
        m.insert(name.to_string(), Value::Real(v));
        m
    }

    #[test]
    fn rmh_matches_conjugate_posterior() {
        let mut model = GaussianUnknownMean::standard();
        let mut obs = observe("y0", 1.2);
        obs.insert("y1".to_string(), Value::Real(0.8));
        let cfg = RmhConfig {
            iterations: 30_000,
            burn_in: 3_000,
            thin: 1,
            seed: 42,
            rw_scale: 0.5,
            prior_kernel: false,
        };
        let (post, stats) = rmh(&mut model, &obs, &cfg);
        assert!(stats.acceptance_rate() > 0.1, "rate {}", stats.acceptance_rate());
        let (mean, std) = post.mean_std(|t| t.value_by_name("mu").unwrap().as_f64());
        let (am, astd) = model.posterior(&[1.2, 0.8]);
        assert!((mean - am).abs() < 0.05, "mean {mean} vs {am}");
        assert!((std - astd).abs() < 0.05, "std {std} vs {astd}");
    }

    #[test]
    fn lmh_prior_kernel_also_matches() {
        let mut model = GaussianUnknownMean::standard();
        let mut obs = observe("y0", 0.6);
        obs.insert("y1".to_string(), Value::Real(0.4));
        let cfg = RmhConfig {
            iterations: 30_000,
            burn_in: 3_000,
            thin: 1,
            seed: 7,
            rw_scale: 0.5,
            prior_kernel: true,
        };
        let (post, _) = rmh(&mut model, &obs, &cfg);
        let (mean, std) = post.mean_std(|t| t.value_by_name("mu").unwrap().as_f64());
        let (am, astd) = model.posterior(&[0.6, 0.4]);
        assert!((mean - am).abs() < 0.05, "mean {mean} vs {am}");
        assert!((std - astd).abs() < 0.05, "std {std} vs {astd}");
    }

    #[test]
    fn rmh_handles_transdimensional_branching() {
        // Posterior over branches given y: weights ∝ p(k)·p(y|k). We verify
        // RMH's branch frequencies against importance sampling (which is
        // unbiased) rather than a closed form.
        let mut model = BranchingModel::standard();
        let obs = observe("y", 1.4);
        let cfg = RmhConfig {
            iterations: 60_000,
            burn_in: 5_000,
            thin: 1,
            seed: 3,
            rw_scale: 0.3,
            prior_kernel: false,
        };
        let (post, stats) = rmh(&mut model, &obs, &cfg);
        assert!(stats.acceptance_rate() > 0.05);
        let branch_freq = |wt: &WeightedTraces, k: f64| {
            wt.expect(|t| {
                if (t.value_by_name("branch").unwrap().as_f64() - k).abs() < 0.5 {
                    1.0
                } else {
                    0.0
                }
            })
        };
        let is_post = crate::is::importance_sampling(&mut model, &obs, 60_000, 19);
        for k in 0..3 {
            let a = branch_freq(&post, k as f64);
            let b = branch_freq(&is_post, k as f64);
            assert!((a - b).abs() < 0.05, "branch {k}: rmh {a} vs is {b}");
        }
    }

    #[test]
    fn rmh_on_pure_rejection_model_uses_independence_moves() {
        let mut model = RejectionModel::standard();
        let obs = observe("y", 0.15);
        let cfg = RmhConfig {
            iterations: 20_000,
            burn_in: 2_000,
            thin: 1,
            seed: 5,
            rw_scale: 0.3,
            prior_kernel: false,
        };
        let (post, stats) = rmh(&mut model, &obs, &cfg);
        assert!(stats.proposed > 0);
        assert!(stats.accepted > 0);
        // Posterior of u given y=0.15 (prior Uniform(0, 0.3), Gaussian noise
        // 0.1) concentrates near 0.15.
        let (mean, _) = post.mean_std(|t| t.result.as_f64());
        assert!((mean - 0.15).abs() < 0.03, "mean {mean}");
    }

    #[test]
    fn chain_statistics_are_reproducible() {
        let mut model = GaussianUnknownMean::standard();
        let obs = observe("y0", 1.0);
        let cfg = RmhConfig { iterations: 2_000, burn_in: 100, ..Default::default() };
        let (p1, s1) = rmh(&mut model, &obs, &cfg);
        let (p2, s2) = rmh(&mut model, &obs, &cfg);
        assert_eq!(s1.accepted, s2.accepted);
        let m1 = p1.expect(|t| t.result.as_f64());
        let m2 = p2.expect(|t| t.result.as_f64());
        assert_eq!(m1, m2);
    }
}
