//! Importance sampling over execution traces.
//!
//! The IS family of engines from the paper (§4.2): run the simulator under a
//! proposer, weight each full execution trace by
//! `log w = log p(x, y) − log q(x)`. With prior proposals the weight reduces
//! to the likelihood of the observes; with IC proposals (see [`crate::ic`])
//! the weights concentrate and the effective sample size per simulator call
//! rises dramatically — that is the amortized-inference payoff.
//!
//! IC/IS inference "is embarrassingly parallel" (§4.2):
//! [`parallel_importance_sampling`] runs on the `etalumis-runtime` batch
//! runner — a work-stealing pool with one model instance per worker and
//! per-trace seeding, so the sampled trace set is identical for any worker
//! count. The serial path below is the degenerate 1-worker case.

use crate::posterior::WeightedTraces;
use etalumis_core::{Executor, ObserveMap, PriorProposer, ProbProgram, Proposer};
use etalumis_runtime::{BatchRunner, CollectSink, MuxSimulatorPool, RuntimeConfig, SimulatorPool};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Importance sampling with prior proposals (a.k.a. likelihood weighting).
pub fn importance_sampling(
    program: &mut dyn ProbProgram,
    observes: &ObserveMap,
    n: usize,
    seed: u64,
) -> WeightedTraces {
    let mut prior = PriorProposer;
    importance_sampling_with(program, observes, n, seed, &mut prior)
}

/// Importance sampling under an arbitrary proposer.
pub fn importance_sampling_with(
    program: &mut dyn ProbProgram,
    observes: &ObserveMap,
    n: usize,
    seed: u64,
    proposer: &mut dyn Proposer,
) -> WeightedTraces {
    let mut traces = Vec::with_capacity(n);
    let mut log_weights = Vec::with_capacity(n);
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..n {
        let t = Executor::execute(program, proposer, observes, &mut rng);
        log_weights.push(t.log_weight());
        traces.push(t);
    }
    WeightedTraces::new(traces, log_weights)
}

/// Embarrassingly parallel prior-proposal IS on the work-stealing runtime:
/// `factory` builds one model instance per worker; trace `i` is seeded from
/// `(seed, i)` alone, so the result is bit-identical for any `workers`.
pub fn parallel_importance_sampling<F, P>(
    factory: F,
    observes: &ObserveMap,
    n: usize,
    seed: u64,
    workers: usize,
) -> WeightedTraces
where
    F: Fn() -> P,
    P: ProbProgram + Send + 'static,
{
    let workers = workers.clamp(1, n.max(1));
    let mut pool = SimulatorPool::from_factory(workers, |_| factory());
    let runner = BatchRunner::new(RuntimeConfig { workers, stealing: true });
    let sink = CollectSink::new(n);
    let stats = runner.run_prior(&mut pool, observes, n, seed, &sink);
    // Local factories produce infallible programs, so failures here mean a
    // broken program wired through the infallible API — refuse to return a
    // silently truncated (biased) estimate.
    assert!(
        stats.failures.is_empty(),
        "{} of {n} traces failed during parallel IS (first: trace {}: {}); \
         use parallel_importance_sampling_mux for fallible remote pools",
        stats.failures.len(),
        stats.failures[0].0,
        stats.failures[0].1,
    );
    let traces = sink.into_traces();
    let log_weights = traces.iter().map(|t| t.log_weight()).collect();
    WeightedTraces::new(traces, log_weights)
}

/// Prior-proposal IS over a multiplexed pool of remote PPX simulators:
/// `workers` reactor threads (0 = all cores, capped at the session count)
/// drive the pool's K sessions concurrently, hiding each simulator's
/// latency behind the others'. Per-trace seeding is identical to
/// [`parallel_importance_sampling`], so for the same model and seed the
/// weighted trace set matches the local and blocking-remote paths exactly.
///
/// Returns an error if any trace failed (dead session): an IS estimate over
/// a silently truncated batch would be biased.
pub fn parallel_importance_sampling_mux(
    pool: &mut MuxSimulatorPool,
    observes: &ObserveMap,
    n: usize,
    seed: u64,
    workers: usize,
) -> Result<WeightedTraces, String> {
    let workers = workers.min(pool.len());
    let runner = BatchRunner::new(RuntimeConfig { workers, stealing: true });
    let sink = CollectSink::new(n);
    let stats = runner.run_mux_prior(pool, observes, n, seed, &sink);
    if let Some((i, e)) = stats.failures.first() {
        return Err(format!(
            "{} of {n} traces failed during multiplexed IS (first: trace {i}: {e})",
            stats.failures.len()
        ));
    }
    let traces = sink.into_traces();
    let log_weights = traces.iter().map(|t| t.log_weight()).collect();
    Ok(WeightedTraces::new(traces, log_weights))
}

#[cfg(test)]
mod tests {
    use super::*;
    use etalumis_distributions::Value;
    use etalumis_simulators::GaussianUnknownMean;

    fn observes_for(ys: &[f64]) -> ObserveMap {
        let mut m = ObserveMap::new();
        for (i, &y) in ys.iter().enumerate() {
            m.insert(format!("y{i}"), Value::Real(y));
        }
        m
    }

    #[test]
    fn is_recovers_conjugate_posterior() {
        let mut model = GaussianUnknownMean::standard();
        let ys = [1.2, 0.8];
        let obs = observes_for(&ys);
        let wt = importance_sampling(&mut model, &obs, 40_000, 11);
        let (mean, std) = wt.mean_std(|t| t.value_by_name("mu").unwrap().as_f64());
        let (am, astd) = model.posterior(&ys);
        assert!((mean - am).abs() < 0.03, "mean {mean} vs analytic {am}");
        assert!((std - astd).abs() < 0.03, "std {std} vs analytic {astd}");
        // Evidence is finite and weights are informative.
        assert!(wt.log_evidence().is_finite());
        assert!(wt.effective_sample_size() > 100.0);
    }

    #[test]
    fn parallel_is_matches_serial_statistics() {
        let ys = [0.5, 0.9];
        let obs = observes_for(&ys);
        let wt = parallel_importance_sampling(GaussianUnknownMean::standard, &obs, 20_000, 5, 4);
        assert_eq!(wt.len(), 20_000);
        let (mean, _) = wt.mean_std(|t| t.value_by_name("mu").unwrap().as_f64());
        let (am, _) = GaussianUnknownMean::standard().posterior(&ys);
        assert!((mean - am).abs() < 0.04, "parallel IS mean {mean} vs {am}");
    }

    #[test]
    fn parallel_is_is_bit_identical_across_worker_counts() {
        // Per-trace seeding on the runtime: the sampled trace set is a pure
        // function of (model, observes, seed), not of the worker count.
        let obs = observes_for(&[1.1]);
        let w1 = parallel_importance_sampling(GaussianUnknownMean::standard, &obs, 500, 13, 1);
        let w4 = parallel_importance_sampling(GaussianUnknownMean::standard, &obs, 500, 13, 4);
        for (a, b) in w1.traces.iter().zip(&w4.traces) {
            assert_eq!(a.value_by_name("mu"), b.value_by_name("mu"));
        }
        assert_eq!(w1.log_weights, w4.log_weights);
    }

    #[test]
    fn mux_is_matches_local_parallel_is_exactly() {
        use etalumis_ppx::{InProcMuxEndpoint, MuxEndpoint, SimulatorServer};
        use etalumis_runtime::MuxSimulatorPool;
        let obs = observes_for(&[1.1]);
        let local = parallel_importance_sampling(GaussianUnknownMean::standard, &obs, 300, 13, 2);

        let mut pool = MuxSimulatorPool::connect(5, "etalumis-rs", |_| {
            let (ep, sim_side) = InProcMuxEndpoint::pair();
            std::thread::spawn(move || {
                let mut server = SimulatorServer::new("is", GaussianUnknownMean::standard());
                let mut t = sim_side;
                let _ = server.serve(&mut t);
            });
            Ok(Box::new(ep) as Box<dyn MuxEndpoint>)
        })
        .unwrap();
        let remote = parallel_importance_sampling_mux(&mut pool, &obs, 300, 13, 2).unwrap();

        assert_eq!(remote.len(), local.len());
        assert_eq!(remote.log_weights, local.log_weights);
        for (a, b) in remote.traces.iter().zip(&local.traces) {
            assert_eq!(a.value_by_name("mu"), b.value_by_name("mu"));
        }
    }

    #[test]
    fn evidence_matches_analytic_marginal() {
        // For the conjugate model, p(y) is Gaussian:
        // y ~ N(mu0, sigma0^2 + sigma^2) for a single observation.
        let mut model = GaussianUnknownMean { mu0: 0.0, sigma0: 1.0, sigma: 0.7, n_obs: 1 };
        let y = 0.9;
        let obs = observes_for(&[y]);
        let wt = importance_sampling(&mut model, &obs, 60_000, 3);
        let var = 1.0f64 + 0.49;
        let analytic = -0.5 * (y * y / var) - 0.5 * (2.0 * std::f64::consts::PI * var).ln();
        assert!(
            (wt.log_evidence() - analytic).abs() < 0.02,
            "evidence {} vs analytic {analytic}",
            wt.log_evidence()
        );
    }
}
