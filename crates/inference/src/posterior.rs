//! Empirical (weighted) posteriors over execution traces.
//!
//! Inference engines return a [`WeightedTraces`] collection: traces with
//! log-importance-weights (uniform for MCMC chains). All downstream analysis
//! — means, histograms, effective sample sizes, Figure 8 panels — works on
//! this representation.

use etalumis_core::Trace;
use etalumis_distributions::math::log_sum_exp;

/// A weighted empirical distribution over traces.
#[derive(Debug, Default)]
pub struct WeightedTraces {
    /// The traces.
    pub traces: Vec<Trace>,
    /// Unnormalized log-weights, aligned with `traces`.
    pub log_weights: Vec<f64>,
}

impl WeightedTraces {
    /// Build from traces and weights.
    pub fn new(traces: Vec<Trace>, log_weights: Vec<f64>) -> Self {
        assert_eq!(traces.len(), log_weights.len());
        Self { traces, log_weights }
    }

    /// Build from an unweighted chain (MCMC output).
    pub fn unweighted(traces: Vec<Trace>) -> Self {
        let n = traces.len();
        Self { traces, log_weights: vec![0.0; n] }
    }

    /// Number of traces.
    pub fn len(&self) -> usize {
        self.traces.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }

    /// Normalized weights (sum to 1). Degenerate all `-inf` weight sets
    /// return uniform weights.
    pub fn normalized_weights(&self) -> Vec<f64> {
        let lse = log_sum_exp(&self.log_weights);
        if !lse.is_finite() {
            let n = self.len().max(1);
            return vec![1.0 / n as f64; self.len()];
        }
        self.log_weights.iter().map(|&lw| (lw - lse).exp()).collect()
    }

    /// Effective sample size of the importance weights: (Σw)²/Σw².
    pub fn effective_sample_size(&self) -> f64 {
        let w = self.normalized_weights();
        let denom: f64 = w.iter().map(|&x| x * x).sum();
        if denom <= 0.0 {
            0.0
        } else {
            1.0 / denom
        }
    }

    /// Log marginal-likelihood estimate log(1/N Σ w_i) (IS evidence).
    pub fn log_evidence(&self) -> f64 {
        log_sum_exp(&self.log_weights) - (self.len() as f64).ln()
    }

    /// Weighted expectation of a scalar function of the trace.
    pub fn expect(&self, f: impl Fn(&Trace) -> f64) -> f64 {
        let w = self.normalized_weights();
        self.traces.iter().zip(w.iter()).map(|(t, &wi)| wi * f(t)).sum()
    }

    /// Weighted mean and standard deviation of a scalar function.
    pub fn mean_std(&self, f: impl Fn(&Trace) -> f64) -> (f64, f64) {
        let w = self.normalized_weights();
        let vals: Vec<f64> = self.traces.iter().map(&f).collect();
        let mean: f64 = vals.iter().zip(w.iter()).map(|(&v, &wi)| wi * v).sum();
        let var: f64 = vals.iter().zip(w.iter()).map(|(&v, &wi)| wi * (v - mean).powi(2)).sum();
        (mean, var.max(0.0).sqrt())
    }

    /// Extract a scalar series by trace-entry or tag name (first match).
    pub fn series(&self, name: &str) -> Vec<f64> {
        self.traces
            .iter()
            .map(|t| t.value_by_name(name).map(|v| v.as_f64()).unwrap_or(f64::NAN))
            .collect()
    }

    /// Weighted histogram of a scalar function over `[lo, hi)` with `bins` bins.
    pub fn histogram(&self, f: impl Fn(&Trace) -> f64, lo: f64, hi: f64, bins: usize) -> Histogram {
        let w = self.normalized_weights();
        let mut h = Histogram::new(lo, hi, bins);
        for (t, &wi) in self.traces.iter().zip(w.iter()) {
            h.add(f(t), wi);
        }
        h
    }
}

/// A fixed-range weighted histogram.
#[derive(Clone, Debug, PartialEq)]
pub struct Histogram {
    /// Lower edge of the first bin.
    pub lo: f64,
    /// Upper edge of the last bin.
    pub hi: f64,
    /// Per-bin accumulated weight.
    pub counts: Vec<f64>,
    /// Weight that fell outside `[lo, hi)`.
    pub overflow: f64,
}

impl Histogram {
    /// New empty histogram.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0 && hi > lo);
        Self { lo, hi, counts: vec![0.0; bins], overflow: 0.0 }
    }

    /// Accumulate one weighted observation.
    pub fn add(&mut self, x: f64, w: f64) {
        if !x.is_finite() || x < self.lo || x >= self.hi {
            self.overflow += w;
            return;
        }
        let bins = self.counts.len();
        let idx = (((x - self.lo) / (self.hi - self.lo)) * bins as f64) as usize;
        self.counts[idx.min(bins - 1)] += w;
    }

    /// Total accumulated in-range weight.
    pub fn total(&self) -> f64 {
        self.counts.iter().sum()
    }

    /// Probability-normalized copy (counts sum to 1 over in-range mass).
    pub fn normalized(&self) -> Histogram {
        let t = self.total();
        let mut h = self.clone();
        if t > 0.0 {
            for c in &mut h.counts {
                *c /= t;
            }
        }
        h
    }

    /// Bin centers.
    pub fn centers(&self) -> Vec<f64> {
        let n = self.counts.len();
        let w = (self.hi - self.lo) / n as f64;
        (0..n).map(|i| self.lo + (i as f64 + 0.5) * w).collect()
    }

    /// Index of the highest bin.
    pub fn mode_bin(&self) -> usize {
        let mut best = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            if c > self.counts[best] {
                best = i;
            }
        }
        best
    }

    /// Render an ASCII bar chart (for the figure harnesses).
    pub fn ascii(&self, width: usize) -> String {
        let h = self.normalized();
        let max = h.counts.iter().cloned().fold(0.0f64, f64::max).max(1e-12);
        let mut out = String::new();
        let centers = h.centers();
        for (i, &c) in h.counts.iter().enumerate() {
            let bar = "#".repeat(((c / max) * width as f64).round() as usize);
            out.push_str(&format!("{:>9.3} | {:<6.3} {}\n", centers[i], c, bar));
        }
        out
    }
}

/// Total variation distance between two normalized histograms on the same
/// support/binning: ½ Σ |p_i − q_i| (includes overflow mass mismatch).
pub fn total_variation(a: &Histogram, b: &Histogram) -> f64 {
    assert_eq!(a.counts.len(), b.counts.len(), "histogram binning mismatch");
    let an = a.normalized();
    let bn = b.normalized();
    0.5 * an.counts.iter().zip(bn.counts.iter()).map(|(&p, &q)| (p - q).abs()).sum::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use etalumis_core::Trace;
    use etalumis_distributions::Value;

    fn trace_with_result(x: f64) -> Trace {
        Trace { result: Value::Real(x), ..Default::default() }
    }

    #[test]
    fn uniform_weights_average() {
        let wt = WeightedTraces::unweighted(vec![trace_with_result(1.0), trace_with_result(3.0)]);
        assert_eq!(wt.expect(|t| t.result.as_f64()), 2.0);
        assert_eq!(wt.effective_sample_size(), 2.0);
    }

    #[test]
    fn weighting_shifts_expectation() {
        let wt = WeightedTraces::new(
            vec![trace_with_result(0.0), trace_with_result(10.0)],
            vec![0.0, (9.0f64).ln()],
        );
        let m = wt.expect(|t| t.result.as_f64());
        assert!((m - 9.0).abs() < 1e-9);
        // Heavily skewed weights → ESS near 1.
        assert!(wt.effective_sample_size() < 1.5);
    }

    #[test]
    fn degenerate_weights_fall_back_to_uniform() {
        let wt = WeightedTraces::new(
            vec![trace_with_result(1.0), trace_with_result(2.0)],
            vec![f64::NEG_INFINITY, f64::NEG_INFINITY],
        );
        let w = wt.normalized_weights();
        assert_eq!(w, vec![0.5, 0.5]);
    }

    #[test]
    fn histogram_bins_and_overflow() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.add(0.5, 1.0);
        h.add(9.99, 2.0);
        h.add(11.0, 5.0);
        h.add(f64::NAN, 1.0);
        assert_eq!(h.counts[0], 1.0);
        assert_eq!(h.counts[4], 2.0);
        assert_eq!(h.overflow, 6.0);
        let n = h.normalized();
        assert!((n.total() - 1.0).abs() < 1e-12);
        assert_eq!(h.mode_bin(), 4);
    }

    #[test]
    fn total_variation_bounds() {
        let mut a = Histogram::new(0.0, 1.0, 2);
        let mut b = Histogram::new(0.0, 1.0, 2);
        a.add(0.1, 1.0);
        b.add(0.9, 1.0);
        assert!((total_variation(&a, &b) - 1.0).abs() < 1e-12);
        assert_eq!(total_variation(&a, &a), 0.0);
    }

    #[test]
    fn mean_std_weighted() {
        let wt = WeightedTraces::unweighted((0..5).map(|i| trace_with_result(i as f64)).collect());
        let (m, s) = wt.mean_std(|t| t.result.as_f64());
        assert!((m - 2.0).abs() < 1e-12);
        assert!((s - 2.0f64.sqrt()).abs() < 1e-9);
    }
}
