//! Inference compilation: importance sampling with learned proposals.
//!
//! IC (paper §4.2–4.3) trains a neural network q(x|y) on prior samples from
//! the simulator and uses it as the IS proposal at inference time. The
//! network itself lives in `etalumis-train`; this module defines the
//! [`ProposalProvider`] interface between the engine and any proposal
//! source, and the IC importance-sampling driver.

use crate::posterior::WeightedTraces;
use etalumis_core::{
    Address, Executor, ObserveMap, ProbProgram, ProposalDecision, Proposer, SampleRequest,
};
use etalumis_distributions::{Distribution, Value};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A source of per-address proposal distributions conditioned on an
/// observation. Implemented by the trained IC network in `etalumis-train`.
pub trait ProposalProvider {
    /// Called at the start of each trace with the observed value the engine
    /// conditions on (the IC network embeds it with the 3DCNN here).
    fn begin_trace(&mut self, observation: &Value);

    /// Proposal for the sample statement at `address` with prior `prior`.
    /// `None` falls back to the prior (e.g. unseen address).
    fn propose(&mut self, address: &Address, prior: &Distribution) -> Option<Distribution>;

    /// Observe the realized value (fed back as the next LSTM input).
    fn notify(&mut self, address: &Address, prior: &Distribution, value: &Value);
}

/// Adapter: drives a [`ProposalProvider`] as an executor [`Proposer`].
pub struct IcProposer<'a, P: ProposalProvider> {
    provider: &'a mut P,
    /// Name of the observe statement whose registered value conditions the
    /// network (e.g. `"calo"` for the tau model).
    pub observe_name: String,
}

impl<'a, P: ProposalProvider> IcProposer<'a, P> {
    /// New adapter conditioning on the observe statement named `observe_name`.
    pub fn new(provider: &'a mut P, observe_name: impl Into<String>) -> Self {
        Self { provider, observe_name: observe_name.into() }
    }
}

impl<P: ProposalProvider> Proposer for IcProposer<'_, P> {
    fn begin_trace(&mut self, observes: &ObserveMap) {
        let obs = observes.get(&self.observe_name).cloned().unwrap_or(Value::Unit);
        self.provider.begin_trace(&obs);
    }

    fn propose(&mut self, req: &SampleRequest) -> ProposalDecision {
        match self.provider.propose(req.address, req.dist) {
            Some(q) => ProposalDecision::Proposal(q),
            None => ProposalDecision::Prior,
        }
    }

    fn notify(&mut self, req: &SampleRequest, value: &Value) {
        self.provider.notify(req.address, req.dist, value);
    }
}

/// Importance sampling guided by a trained proposal provider.
pub fn ic_importance_sampling<P: ProposalProvider>(
    program: &mut dyn ProbProgram,
    observes: &ObserveMap,
    observe_name: &str,
    provider: &mut P,
    n: usize,
    seed: u64,
) -> WeightedTraces {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut traces = Vec::with_capacity(n);
    let mut log_weights = Vec::with_capacity(n);
    for _ in 0..n {
        let mut proposer = IcProposer::new(provider, observe_name);
        let t = Executor::execute(program, &mut proposer, observes, &mut rng);
        log_weights.push(t.log_weight());
        traces.push(t);
    }
    WeightedTraces::new(traces, log_weights)
}

#[cfg(test)]
mod tests {
    use super::*;
    use etalumis_simulators::GaussianUnknownMean;

    /// An oracle provider that proposes the *analytic posterior* of the
    /// conjugate Gaussian — the ideal IC network. With it, every importance
    /// weight should be (nearly) equal and ESS ≈ N.
    struct OracleProvider {
        model: GaussianUnknownMean,
        ys: Vec<f64>,
    }

    impl ProposalProvider for OracleProvider {
        fn begin_trace(&mut self, _obs: &Value) {}

        fn propose(&mut self, address: &Address, _prior: &Distribution) -> Option<Distribution> {
            assert!(address.base.contains("mu"));
            let (m, s) = self.model.posterior(&self.ys);
            Some(Distribution::Normal { mean: m, std: s })
        }

        fn notify(&mut self, _a: &Address, _p: &Distribution, _v: &Value) {}
    }

    #[test]
    fn oracle_proposals_give_near_perfect_ess() {
        let mut model = GaussianUnknownMean::standard();
        let ys = vec![1.0, 1.4];
        let mut observes = ObserveMap::new();
        for (i, &y) in ys.iter().enumerate() {
            observes.insert(format!("y{i}"), Value::Real(y));
        }
        let mut oracle = OracleProvider { model: GaussianUnknownMean::standard(), ys: ys.clone() };
        let n = 4_000;
        let post = ic_importance_sampling(&mut model, &observes, "y0", &mut oracle, n, 1);
        // Perfect proposal ⇒ constant weights ⇒ ESS ≈ N.
        let ess = post.effective_sample_size();
        assert!(ess > 0.98 * n as f64, "oracle ESS {ess} of {n}");
        let (mean, std) = post.mean_std(|t| t.value_by_name("mu").unwrap().as_f64());
        let (am, astd) = model.posterior(&ys);
        assert!((mean - am).abs() < 0.05);
        assert!((std - astd).abs() < 0.05);
        // Compare against prior-proposal IS at the same budget: lower ESS.
        let prior_post = crate::is::importance_sampling(&mut model, &observes, n, 2);
        assert!(
            prior_post.effective_sample_size() < 0.9 * ess,
            "prior ESS {} should trail oracle ESS {ess}",
            prior_post.effective_sample_size()
        );
    }

    #[test]
    fn fallback_to_prior_when_provider_declines() {
        struct Decline;
        impl ProposalProvider for Decline {
            fn begin_trace(&mut self, _obs: &Value) {}
            fn propose(&mut self, _a: &Address, _p: &Distribution) -> Option<Distribution> {
                None
            }
            fn notify(&mut self, _a: &Address, _p: &Distribution, _v: &Value) {}
        }
        let mut model = GaussianUnknownMean::standard();
        let mut observes = ObserveMap::new();
        observes.insert("y0".into(), Value::Real(0.5));
        observes.insert("y1".into(), Value::Real(0.5));
        let mut d = Decline;
        let post = ic_importance_sampling(&mut model, &observes, "y0", &mut d, 5_000, 3);
        // Declining provider behaves exactly like prior IS.
        let (mean, _) = post.mean_std(|t| t.value_by_name("mu").unwrap().as_f64());
        let (am, _) = model.posterior(&[0.5, 0.5]);
        assert!((mean - am).abs() < 0.06, "{mean} vs {am}");
    }
}
