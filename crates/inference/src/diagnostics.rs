//! MCMC convergence diagnostics.
//!
//! The paper (§4.2, §6.4) validates its RMH baseline with autocorrelation
//! measurements ("the number of iterations one needs to get effectively
//! independent samples in the same MCMC chain") and the Gelman–Rubin metric
//! over independent chains. Both are implemented here, along with the
//! integrated autocorrelation time and chain effective sample size.

/// Normalized autocorrelation function of a scalar chain up to `max_lag`.
///
/// Returns `rho[0..=max_lag]` with `rho[0] == 1`.
pub fn autocorrelation(series: &[f64], max_lag: usize) -> Vec<f64> {
    let n = series.len();
    assert!(n > 1, "need at least 2 samples");
    let max_lag = max_lag.min(n - 1);
    let mean = series.iter().sum::<f64>() / n as f64;
    let var = series.iter().map(|&x| (x - mean).powi(2)).sum::<f64>() / n as f64;
    if var <= 0.0 {
        // Constant chain: perfectly correlated at every lag.
        return vec![1.0; max_lag + 1];
    }
    (0..=max_lag)
        .map(|lag| {
            let mut acc = 0.0;
            for i in 0..n - lag {
                acc += (series[i] - mean) * (series[i + lag] - mean);
            }
            acc / (n as f64 * var)
        })
        .collect()
}

/// Integrated autocorrelation time τ using Sokal's adaptive window
/// (`window = c·τ`, c = 6). Returns at least 1.
pub fn integrated_autocorr_time(series: &[f64]) -> f64 {
    let n = series.len();
    if n < 4 {
        return 1.0;
    }
    let rho = autocorrelation(series, (n / 2).min(10_000));
    let c = 6.0;
    let mut tau = 1.0;
    for (m, _) in rho.iter().enumerate().skip(1) {
        tau += 2.0 * rho[m];
        if (m as f64) >= c * tau.max(1.0) {
            break;
        }
    }
    tau.max(1.0)
}

/// Effective sample size of a correlated chain: N / τ.
pub fn chain_ess(series: &[f64]) -> f64 {
    series.len() as f64 / integrated_autocorr_time(series)
}

/// Gelman–Rubin potential scale reduction factor R̂ over ≥2 chains of equal
/// length. Values close to 1 indicate convergence onto the same posterior.
pub fn gelman_rubin(chains: &[Vec<f64>]) -> f64 {
    let m = chains.len();
    assert!(m >= 2, "Gelman-Rubin needs at least two chains");
    let n = chains[0].len();
    assert!(n >= 2, "chains too short");
    for c in chains {
        assert_eq!(c.len(), n, "chains must have equal length");
    }
    let chain_means: Vec<f64> = chains.iter().map(|c| c.iter().sum::<f64>() / n as f64).collect();
    let grand = chain_means.iter().sum::<f64>() / m as f64;
    // Between-chain variance B and within-chain variance W.
    let b = n as f64 / (m as f64 - 1.0)
        * chain_means.iter().map(|&cm| (cm - grand).powi(2)).sum::<f64>();
    let w = chains
        .iter()
        .zip(chain_means.iter())
        .map(|(c, &cm)| c.iter().map(|&x| (x - cm).powi(2)).sum::<f64>() / (n as f64 - 1.0))
        .sum::<f64>()
        / m as f64;
    if w <= 0.0 {
        return 1.0;
    }
    let var_plus = (n as f64 - 1.0) / n as f64 * w + b / n as f64;
    (var_plus / w).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn ar1(n: usize, phi: f64, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = 0.0;
        (0..n)
            .map(|_| {
                let e: f64 = rng.gen::<f64>() - 0.5;
                x = phi * x + e;
                x
            })
            .collect()
    }

    #[test]
    fn iid_chain_has_tau_near_one() {
        let xs = ar1(20_000, 0.0, 1);
        let tau = integrated_autocorr_time(&xs);
        assert!(tau < 1.3, "tau {tau}");
        assert!(chain_ess(&xs) > 15_000.0);
    }

    #[test]
    fn correlated_chain_has_larger_tau() {
        let xs = ar1(20_000, 0.9, 2);
        let tau = integrated_autocorr_time(&xs);
        // AR(1) with phi=0.9 has tau = (1+phi)/(1-phi) = 19.
        assert!(tau > 8.0 && tau < 40.0, "tau {tau}");
        let rho = autocorrelation(&xs, 5);
        assert!((rho[0] - 1.0).abs() < 1e-12);
        assert!((rho[1] - 0.9).abs() < 0.05, "rho1 {}", rho[1]);
    }

    #[test]
    fn gelman_rubin_near_one_for_same_distribution() {
        let a = ar1(5_000, 0.5, 3);
        let b = ar1(5_000, 0.5, 4);
        let r = gelman_rubin(&[a, b]);
        assert!(r < 1.1, "R-hat {r}");
    }

    #[test]
    fn gelman_rubin_detects_disagreement() {
        let a = ar1(2_000, 0.2, 5);
        let b: Vec<f64> = ar1(2_000, 0.2, 6).iter().map(|x| x + 10.0).collect();
        let r = gelman_rubin(&[a, b]);
        assert!(r > 3.0, "R-hat {r} should flag disjoint chains");
    }

    #[test]
    fn constant_chain_is_degenerate_but_finite() {
        let xs = vec![2.0; 100];
        let rho = autocorrelation(&xs, 10);
        assert!(rho.iter().all(|r| r.is_finite()));
        assert!(integrated_autocorr_time(&xs).is_finite());
    }
}
