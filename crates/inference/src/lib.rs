//! # etalumis-inference
//!
//! The inference engines of etalumis-rs, operating in the space of execution
//! traces: "a single sample from the inference engine corresponds to a full
//! run of the simulator" (paper §4.2).
//!
//! * [`is`] — importance sampling with prior proposals (likelihood
//!   weighting), including the embarrassingly parallel driver.
//! * [`rmh`] — single-site random-walk / lightweight Metropolis–Hastings,
//!   the paper's high-cost baseline with statistical guarantees.
//! * [`ic`] — inference compilation: IS guided by a learned
//!   [`ic::ProposalProvider`] (the trained 3DCNN–LSTM network of
//!   `etalumis-train`).
//! * [`diagnostics`] — autocorrelation, integrated autocorrelation time,
//!   chain ESS, and the Gelman–Rubin R̂ used to certify the RMH baseline.
//! * [`posterior`] — weighted empirical posteriors, histograms, importance
//!   ESS, evidence estimates.

pub mod diagnostics;
pub mod ic;
pub mod is;
pub mod posterior;
pub mod rmh;

pub use ic::{ic_importance_sampling, IcProposer, ProposalProvider};
pub use is::{
    importance_sampling, importance_sampling_with, parallel_importance_sampling,
    parallel_importance_sampling_mux,
};
pub use posterior::{total_variation, Histogram, WeightedTraces};
pub use rmh::{rmh, rmh_with_callback, RmhConfig, RmhStats};
