//! The work-stealing task scheduler.
//!
//! The paper's trace-generation throughput depends on dynamic load
//! balancing: execution traces vary wildly in length (rejection loops,
//! branching decay channels), so static partitioning leaves workers idle
//! while stragglers finish (§4.4, Figure 4). This module provides the
//! classic fix — per-worker deques with stealing:
//!
//! * each worker owns a deque and pops from its **back** (LIFO, cache-warm),
//! * an idle worker steals from the **front** of a victim's deque (FIFO, the
//!   oldest — and for block-filled queues, largest-remaining — work),
//! * the batch is fixed up front, so "every deque empty" is the termination
//!   condition; no task is ever lost or run twice.
//!
//! Tasks are plain `usize` indices into the batch; what an index *means*
//! (which trace to generate, under which seed) is the caller's business —
//! see [`crate::BatchRunner`].

use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};

/// Per-worker deques over a fixed batch of `usize` tasks, with stealing.
pub struct TaskQueues {
    deques: Vec<Mutex<VecDeque<usize>>>,
    steals: AtomicU64,
}

impl TaskQueues {
    /// Empty queues for `workers` workers (at least one).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        Self {
            deques: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            steals: AtomicU64::new(0),
        }
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.deques.len()
    }

    /// Distribute tasks `0..n` as contiguous blocks, one block per worker —
    /// the same initial assignment a static partitioner would make, so any
    /// later steal is exactly the load-balancing a static scheduler misses.
    pub fn fill_blocks(&self, n: usize) {
        let w = self.workers();
        let per = n.div_ceil(w.max(1)).max(1);
        for (i, deque) in self.deques.iter().enumerate() {
            let start = (i * per).min(n);
            let end = ((i + 1) * per).min(n);
            deque.lock().extend(start..end);
        }
    }

    /// Distribute an explicit task list round-robin across workers (task
    /// `k` goes to worker `k % workers`). Used by resumable runs: the
    /// remaining indices of a checkpointed batch are an arbitrary set, and
    /// interleaving keeps the *contiguous completed prefix* — what a
    /// checkpoint can durably commit — advancing evenly instead of at the
    /// pace of worker 0's block.
    pub fn fill_interleaved(&self, tasks: impl IntoIterator<Item = usize>) {
        let w = self.workers();
        for (k, t) in tasks.into_iter().enumerate() {
            self.deques[k % w].lock().push_front(t);
        }
    }

    /// Push one task onto `worker`'s deque.
    pub fn push(&self, worker: usize, task: usize) {
        self.deques[worker].lock().push_back(task);
    }

    /// Drain every remaining task from every deque (ascending). Called after
    /// the workers have exited to account for tasks stranded by worker
    /// retirement (e.g. every session of a mux worker died with stealing
    /// disabled) — a batch must end with each index delivered or failed,
    /// never silently dropped.
    pub fn drain_remaining(&self) -> Vec<usize> {
        let mut left = Vec::new();
        for d in &self.deques {
            left.extend(d.lock().drain(..));
        }
        left.sort_unstable();
        left
    }

    /// Next task for `worker`: its own deque first (back), then — when
    /// `stealing` — the fronts of the other workers' deques, scanning from
    /// its right-hand neighbor. `None` means the batch is drained.
    pub fn pop(&self, worker: usize, stealing: bool) -> Option<usize> {
        self.pop_traced(worker, stealing).map(|(t, _)| t)
    }

    /// Like [`pop`](Self::pop), but also reports whether the task was
    /// stolen from another worker's deque — the per-task attribution the
    /// telemetry layer records as `runtime.steal` counters.
    pub fn pop_traced(&self, worker: usize, stealing: bool) -> Option<(usize, bool)> {
        if let Some(t) = self.deques[worker].lock().pop_back() {
            return Some((t, false));
        }
        if !stealing {
            return None;
        }
        let w = self.workers();
        for k in 1..w {
            let victim = (worker + k) % w;
            if let Some(t) = self.deques[victim].lock().pop_front() {
                self.steals.fetch_add(1, Ordering::Relaxed);
                return Some((t, true));
            }
        }
        None
    }

    /// Total number of successful steals so far.
    pub fn steals(&self) -> u64 {
        self.steals.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn block_fill_covers_every_task_once() {
        let q = TaskQueues::new(4);
        q.fill_blocks(10);
        let mut seen = HashSet::new();
        for w in 0..4 {
            while let Some(t) = q.pop(w, false) {
                assert!(seen.insert(t), "task {t} scheduled twice");
            }
        }
        assert_eq!(seen.len(), 10);
        assert_eq!(q.steals(), 0);
    }

    #[test]
    fn idle_worker_steals_from_loaded_worker() {
        let q = TaskQueues::new(3);
        // All work on worker 0.
        for t in 0..6 {
            q.push(0, t);
        }
        // Worker 2 has nothing of its own; with stealing disabled it starves…
        assert_eq!(q.pop(2, false), None);
        // …with stealing enabled it takes worker 0's *oldest* task.
        assert_eq!(q.pop(2, true), Some(0));
        assert_eq!(q.steals(), 1);
        // Worker 0 still pops its own newest first (LIFO).
        assert_eq!(q.pop(0, true), Some(5));
    }

    #[test]
    fn interleaved_fill_pops_ascending_per_worker() {
        let q = TaskQueues::new(3);
        q.fill_interleaved([5usize, 6, 7, 8, 9, 10, 11]);
        // Worker 0 got 5, 8, 11 and pops its lowest index first.
        assert_eq!(q.pop(0, false), Some(5));
        assert_eq!(q.pop(0, false), Some(8));
        assert_eq!(q.pop(1, false), Some(6));
        assert_eq!(q.pop(2, false), Some(7));
        let rest = q.drain_remaining();
        assert_eq!(rest, vec![9, 10, 11]);
        assert_eq!(q.pop(0, true), None);
    }

    #[test]
    fn drained_queues_terminate() {
        let q = TaskQueues::new(2);
        q.fill_blocks(3);
        let mut got = 0;
        for w in [0usize, 1, 0, 1, 0, 1] {
            if q.pop(w, true).is_some() {
                got += 1;
            }
        }
        assert_eq!(got, 3);
        assert_eq!(q.pop(0, true), None);
        assert_eq!(q.pop(1, true), None);
    }
}
