//! Streaming trace delivery: the runtime side of the generate→train
//! pipeline.
//!
//! The offline pipeline (§4) stages everything through the filesystem:
//! generate shards, sort shards, train on shards. The streaming mode
//! replaces that seam with a bounded [`TraceChannel`] the worker pool
//! feeds directly:
//!
//! * [`StreamSink`] — a [`TraceSink`] that reorders worker completions
//!   into strict batch-index order and pushes them into the channel. Order
//!   matters: it makes the stream's content *and sequence* a pure function
//!   of `(factory, seed, n)` — invariant over worker count and channel
//!   capacity — which is what lets a streaming training run be reproduced
//!   bit-identically from its teed shards.
//! * [`TeeSink`] — fans one delivery out to two sinks, used to tee the
//!   live stream through a [`CheckpointSink`] so a streaming run stays
//!   durable, resumable, and byte-identical to the batch pipeline's
//!   output.
//! * [`stream_dataset_resumable`] — the teed streaming generator: the
//!   full checkpoint/resume protocol of
//!   [`generate_dataset_resumable`](crate::generate_dataset_resumable),
//!   with the stream re-fed on resume by **prefix replay** (committed
//!   shards + the partial-shard journal are pushed into the channel before
//!   live generation of the remainder starts), so a consumer restarted
//!   after a crash sees exactly the stream an uninterrupted run produces.
//!
//! Back-pressure discipline: when the trainer falls behind, `channel.send`
//! blocks inside the sink; workers then block either on the send or on the
//! sink's mutex. Nothing is dropped, memory stays bounded by
//! `capacity + reorder window`, and the pipeline cannot deadlock — the
//! consumer draining (or closing) the channel always unblocks the chain.

use crate::batch::{BatchRunner, KillSwitch, RunStats, RuntimeConfig};
use crate::checkpoint::{Checkpoint, CheckpointConfig, CheckpointSink};
use crate::dataset::{fail_on_failures, DatasetGenConfig};
use crate::oversub::MuxSimulatorPool;
use crate::pool::SimulatorPool;
use crate::sink::TraceSink;
use etalumis_core::{ObserveMap, ProbProgram, Trace};
use etalumis_data::{
    partition_prefix, read_journal, ShardReader, TraceChannel, TraceDataset, TraceRecord,
};
use etalumis_telemetry::Telemetry;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::io;
use std::path::Path;
use std::sync::Arc;

/// Reorder-buffer wait bounds, mirroring [`CheckpointSink`]'s: a worker
/// whose index is too far ahead of the contiguous prefix parks briefly so
/// the buffer cannot balloon, but never forever — after the budget it
/// proceeds, trading bounded memory growth for guaranteed progress.
const MAX_WAITS: usize = 4000;
const WAIT_STEP_MICROS: u64 = 50;

struct StreamState {
    /// Next batch index owed to the channel.
    next: usize,
    /// Completed (Some) or permanently failed (None) indices beyond
    /// `next`, waiting for the prefix to close.
    pending: BTreeMap<usize, Option<TraceRecord>>,
}

/// A [`TraceSink`] that feeds a [`TraceChannel`] in strict batch-index
/// order.
///
/// Workers deliver completions in whatever order execution finishes; the
/// sink holds them in a reorder buffer and releases the contiguous prefix.
/// A failed index (see [`TraceSink::reject`]) is a hole the prefix skips —
/// consumers see one record fewer, callers see the failure in
/// [`RunStats::failures`].
///
/// If the consumer closes the channel mid-run, delivery degrades to a
/// no-op drain: workers complete the batch (so teed shards stay whole)
/// without anyone blocking on the dead consumer.
pub struct StreamSink<'a> {
    channel: &'a TraceChannel,
    pruned: bool,
    /// Max distance an accepted index may run ahead of the contiguous
    /// prefix before its worker parks (bounds buffer memory).
    window: usize,
    state: Mutex<StreamState>,
}

impl<'a> StreamSink<'a> {
    /// Sink delivering batch indices `start..` into `channel`. `start` is 0
    /// for a fresh run, the checkpoint watermark for a resumed one (the
    /// prefix below it is replayed from shards, not re-generated).
    pub fn new(channel: &'a TraceChannel, pruned: bool, start: usize) -> Self {
        Self {
            channel,
            pruned,
            window: channel.capacity() * 2 + 64,
            state: Mutex::new(StreamState { next: start, pending: BTreeMap::new() }),
        }
    }

    /// Next batch index the channel is owed (`n` after a complete run).
    pub fn watermark(&self) -> usize {
        self.state.lock().next
    }

    fn deliver(&self, index: usize, rec: Option<TraceRecord>) {
        let mut waits = 0usize;
        loop {
            let mut st = self.state.lock(); // etalumis: allow(reactor-blocking, reason = "reorder-window lock held across the channel hand-off preserves index order; the park below is MAX_WAITS-capped")
            if index <= st.next + self.window || waits >= MAX_WAITS || self.channel.is_closed() {
                st.pending.insert(index, rec);
                while let Some(entry) = {
                    let next = st.next;
                    st.pending.remove(&next)
                } {
                    if let Some(r) = entry {
                        // A closed channel (consumer finished early) turns
                        // the remaining stream into a drain, not an error:
                        // the run itself — and any tee — must still finish.
                        let _ = self.channel.send(r);
                    }
                    st.next += 1;
                }
                return;
            }
            drop(st);
            waits += 1;
            // etalumis: allow(reactor-blocking, reason = "bounded backpressure park (MAX_WAITS-capped) while the reorder window is full")
            std::thread::sleep(std::time::Duration::from_micros(WAIT_STEP_MICROS));
        }
    }
}

impl TraceSink for StreamSink<'_> {
    fn accept(&self, index: usize, trace: Trace) {
        let rec = TraceRecord::from_trace(&trace, self.pruned);
        self.deliver(index, Some(rec));
    }

    fn reject(&self, index: usize, _error: &str) {
        self.deliver(index, None);
    }
}

/// Fan one trace delivery out to two sinks (checkpoint tee): `first`
/// receives the delivery before `second`, so when `first` is the durable
/// [`CheckpointSink`] a record is journaled before the trainer can see it.
pub struct TeeSink<'a, A: TraceSink, B: TraceSink> {
    first: &'a A,
    second: &'a B,
}

impl<'a, A: TraceSink, B: TraceSink> TeeSink<'a, A, B> {
    /// Tee deliveries to `first`, then `second`.
    pub fn new(first: &'a A, second: &'a B) -> Self {
        Self { first, second }
    }
}

impl<A: TraceSink, B: TraceSink> TraceSink for TeeSink<'_, A, B> {
    fn accept(&self, index: usize, trace: Trace) {
        self.first.accept(index, trace.clone());
        self.second.accept(index, trace);
    }

    fn reject(&self, index: usize, error: &str) {
        self.first.reject(index, error);
        self.second.reject(index, error);
    }
}

/// Stream `cfg.n` prior traces into `channel` in batch-index order, with
/// no durable tee (pure online mode: nothing touches disk). Closes the
/// channel when the batch completes — including on error, so a consumer
/// never hangs on a producer that gave up. Failed traces are an error, as
/// in dataset generation: a training stream must not silently miss
/// records.
pub fn stream_prior_traces<P, F>(
    factory: F,
    cfg: &DatasetGenConfig,
    channel: &TraceChannel,
) -> io::Result<RunStats>
where
    P: ProbProgram + Send + 'static,
    F: Fn(usize) -> P,
{
    let workers = RuntimeConfig { workers: cfg.workers, ..Default::default() }.resolved_workers();
    let mut pool = SimulatorPool::from_factory(workers, factory);
    // Interleaved ascending task order (not the default block fill, which
    // workers drain back-to-front): the stream sink releases the contiguous
    // index prefix, so completions must track it or every delivery parks
    // against the reorder window.
    let runner = BatchRunner::new(RuntimeConfig { workers, stealing: true })
        .with_tasks((0..cfg.n).collect());
    let observes = ObserveMap::new();
    let sink = StreamSink::new(channel, cfg.pruned, 0);
    let stats = runner.run_prior(&mut pool, &observes, cfg.n, cfg.seed, &sink);
    channel.close();
    fail_on_failures(&stats)?;
    Ok(stats)
}

/// Replay the committed prefix of a single-partition checkpointed run into
/// the channel: finished shards in roll order, then the in-progress
/// shard's journal up to its durable byte count. Returns the number of
/// records replayed (== the manifest watermark for a fault-free run).
fn replay_committed_prefix(
    dir: &Path,
    manifest: &Checkpoint,
    channel: &TraceChannel,
) -> io::Result<usize> {
    let prefix = partition_prefix(0);
    let progress = &manifest.parts[0];
    let mut replayed = 0usize;
    let mut closed = false;
    for seq in 0..progress.finished {
        let path = dir.join(format!("{prefix}_{seq:05}.etlm"));
        for rec in ShardReader::open(&path)?.read_all()? {
            replayed += 1;
            if !closed && channel.send(rec).is_err() {
                closed = true;
            }
        }
    }
    if progress.partial_records > 0 {
        let journal = dir.join(format!("{prefix}_{:05}.partial", progress.finished));
        for rec in read_journal(&journal, progress.partial_bytes)? {
            replayed += 1;
            if !closed && channel.send(rec).is_err() {
                closed = true;
            }
        }
    }
    Ok(replayed)
}

/// Checkpointed streaming generation: the tee mode.
///
/// Runs the same manifest/journal protocol as
/// [`generate_dataset_resumable`](crate::generate_dataset_resumable) —
/// the produced shard files are **byte-identical** to it — while
/// simultaneously feeding every record into `channel` in batch-index
/// order. The channel is closed when the run ends (complete, killed, or
/// failed), so the consumer always terminates.
///
/// **Reproducibility contract** (see DESIGN.md): the layout is pinned to a
/// single partition. With one partition, commit order *is* batch-index
/// order, so the teed shards read back in dataset order reproduce the live
/// stream record-for-record — and on resume the committed prefix is
/// replayed into the channel from those shards (plus the partial-shard
/// journal) before live generation of `watermark..n` continues. A consumer
/// that restarts from scratch on resume therefore consumes exactly the
/// stream of an uninterrupted run. Multi-partition layouts interleave
/// partitions in an order the shards do not record, so they cannot honor
/// this contract and are rejected with `InvalidInput`.
///
/// Kill/resume semantics match the batch pipeline: a fired `kill` switch
/// returns `ErrorKind::Interrupted` with the manifest and journals intact;
/// the same call resumes. Permanent trace failures error out (manifest
/// kept, resume retries them); the batch pipeline's healing pass is not
/// run here because repair shards append records out of stream order —
/// heal with `generate_dataset_resumable` first if a run needs it.
pub fn stream_dataset_resumable<P, F>(
    factory: F,
    cfg: &DatasetGenConfig,
    dir: &Path,
    ckpt: &CheckpointConfig,
    kill: Option<Arc<KillSwitch>>,
    channel: &TraceChannel,
) -> io::Result<TraceDataset>
where
    P: ProbProgram + Send + 'static,
    F: Fn(usize) -> P,
{
    stream_dataset_resumable_traced(factory, cfg, dir, ckpt, kill, channel, Telemetry::disabled())
}

/// [`stream_dataset_resumable`] with a telemetry handle threaded through
/// every seam it crosses: the worker pool (`runtime.*` spans/counters), the
/// checkpoint tee (`ckpt.*`), and the run summary ([`RunStats::record_to`]).
/// Attach the same handle to the channel
/// ([`TraceChannel::with_telemetry`](etalumis_data::TraceChannel::with_telemetry))
/// and the trainer for whole-pipeline coverage. Telemetry only observes:
/// the stream content and shard bytes are bit-identical to the untraced
/// call.
pub fn stream_dataset_resumable_traced<P, F>(
    factory: F,
    cfg: &DatasetGenConfig,
    dir: &Path,
    ckpt: &CheckpointConfig,
    kill: Option<Arc<KillSwitch>>,
    channel: &TraceChannel,
    tel: Telemetry,
) -> io::Result<TraceDataset>
where
    P: ProbProgram + Send + 'static,
    F: Fn(usize) -> P,
{
    let workers = RuntimeConfig { workers: cfg.workers, ..Default::default() }.resolved_workers();
    let mut pool = SimulatorPool::from_factory(workers, factory);
    let observes = ObserveMap::new();
    stream_resumable_with(
        |runner, sink| runner.run_prior(&mut pool, &observes, cfg.n, cfg.seed, sink),
        BatchRunner::new(RuntimeConfig { workers, stealing: true }).with_telemetry(tel),
        cfg,
        dir,
        ckpt,
        kill,
        channel,
    )
}

/// [`stream_dataset_resumable`] over a multiplexed remote-session pool:
/// the oversubscribed reactor feeds the same tee, so out-of-process
/// simulator fleets stream straight into training too.
pub fn stream_dataset_mux_resumable(
    pool: &mut MuxSimulatorPool,
    cfg: &DatasetGenConfig,
    dir: &Path,
    ckpt: &CheckpointConfig,
    kill: Option<Arc<KillSwitch>>,
    channel: &TraceChannel,
) -> io::Result<TraceDataset> {
    stream_dataset_mux_resumable_traced(pool, cfg, dir, ckpt, kill, channel, Telemetry::disabled())
}

/// [`stream_dataset_mux_resumable`] with a telemetry handle threaded
/// through the reactor (`mux.*` counters), the worker pool (`runtime.*`),
/// and the checkpoint tee (`ckpt.*`). See
/// [`stream_dataset_resumable_traced`].
pub fn stream_dataset_mux_resumable_traced(
    pool: &mut MuxSimulatorPool,
    cfg: &DatasetGenConfig,
    dir: &Path,
    ckpt: &CheckpointConfig,
    kill: Option<Arc<KillSwitch>>,
    channel: &TraceChannel,
    tel: Telemetry,
) -> io::Result<TraceDataset> {
    let workers = if cfg.workers == 0 { pool.len() } else { cfg.workers.min(pool.len()) };
    let observes = ObserveMap::new();
    stream_resumable_with(
        |runner, sink| runner.run_mux_prior(pool, &observes, cfg.n, cfg.seed, sink),
        BatchRunner::new(RuntimeConfig { workers, stealing: true }).with_telemetry(tel),
        cfg,
        dir,
        ckpt,
        kill,
        channel,
    )
}

fn stream_resumable_with(
    mut run: impl FnMut(&BatchRunner, &dyn TraceSink) -> RunStats,
    runner: BatchRunner,
    cfg: &DatasetGenConfig,
    dir: &Path,
    ckpt: &CheckpointConfig,
    kill: Option<Arc<KillSwitch>>,
    channel: &TraceChannel,
) -> io::Result<TraceDataset> {
    // On any exit path the consumer must observe end-of-stream.
    let result = stream_resumable_inner(&mut run, runner, cfg, dir, ckpt, kill, channel);
    channel.close();
    result
}

fn stream_resumable_inner(
    run: &mut impl FnMut(&BatchRunner, &dyn TraceSink) -> RunStats,
    runner: BatchRunner,
    cfg: &DatasetGenConfig,
    dir: &Path,
    ckpt: &CheckpointConfig,
    kill: Option<Arc<KillSwitch>>,
    channel: &TraceChannel,
) -> io::Result<TraceDataset> {
    if cfg.partitions.max(1) != 1 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!(
                "streaming tee requires a single-partition layout (got {}): with multiple \
                 partitions the shards do not record the cross-partition stream order, so the \
                 teed run could not be replayed",
                cfg.partitions
            ),
        ));
    }
    let layout = cfg.layout();
    let (sink, remaining, watermark) = match Checkpoint::load(dir)? {
        Some(manifest) => {
            if !manifest.failed.is_empty() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "cannot stream-resume a run with {} permanently failed trace(s): heal \
                         it with generate_dataset_resumable first",
                        manifest.failed.len()
                    ),
                ));
            }
            let replayed = replay_committed_prefix(dir, &manifest, channel)?;
            if replayed as u64 != manifest.watermark {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "prefix replay produced {replayed} record(s) but the manifest watermark \
                         is {} — shards and manifest disagree",
                        manifest.watermark
                    ),
                ));
            }
            let watermark = manifest.watermark as usize;
            let sink = CheckpointSink::resume(dir, layout, ckpt, &manifest)?;
            (sink, manifest.remaining(), watermark)
        }
        None => (CheckpointSink::new(dir, layout, ckpt), (0..cfg.n).collect(), 0),
    };
    let sink = sink.with_telemetry(runner.telemetry().clone());
    let stream = StreamSink::new(channel, cfg.pruned, watermark);
    let tee = TeeSink::new(&sink, &stream);
    let mut main_runner = runner.with_tasks(remaining);
    if let Some(k) = &kill {
        main_runner = main_runner.with_kill_switch(k.clone());
    }
    let stats = run(&main_runner, &tee);
    if stats.killed {
        return Err(io::Error::new(
            io::ErrorKind::Interrupted,
            format!(
                "streaming generation killed at watermark {} of 0..{} (resume with the same \
                 call; the committed prefix will be replayed into the channel)",
                sink.watermark(),
                cfg.n
            ),
        ));
    }
    // No healing pass in stream mode (repair shards would break stream
    // order); failures keep the manifest alive so the same call retries.
    if !sink.failed().is_empty() || !stats.failures.is_empty() {
        fail_on_failures(&stats)?;
        return Err(io::Error::other(format!(
            "{} trace(s) failed permanently during streaming generation (resume with the \
             same call to retry)",
            sink.failed().len()
        )));
    }
    TraceDataset::open(sink.finalize()?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::generate_dataset_resumable;
    use crate::sink::CollectSink;
    use etalumis_simulators::BranchingModel;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("etalumis_stream_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn cfg(n: usize, seed: u64, workers: usize) -> DatasetGenConfig {
        DatasetGenConfig {
            n,
            traces_per_shard: 8,
            partitions: 1,
            workers,
            seed,
            ..Default::default()
        }
    }

    /// Drain a channel on a thread, returning the records in arrival order.
    fn drain(channel: Arc<TraceChannel>) -> std::thread::JoinHandle<Vec<TraceRecord>> {
        std::thread::spawn(move || {
            let mut out = Vec::new();
            while let Some(r) = channel.recv() {
                out.push(r);
            }
            out
        })
    }

    #[test]
    fn stream_sink_orders_out_of_order_deliveries() {
        use etalumis_core::Executor;
        let chan = TraceChannel::bounded(16);
        let sink = StreamSink::new(&chan, true, 0);
        let mut m = BranchingModel::standard();
        let traces: Vec<Trace> = (0..5).map(|s| Executor::sample_prior(&mut m, s)).collect();
        for i in [3usize, 0, 4, 1, 2] {
            sink.accept(i, traces[i].clone());
        }
        chan.close();
        let mut got = Vec::new();
        while let Some(r) = chan.recv() {
            got.push(r);
        }
        let expect: Vec<TraceRecord> =
            traces.iter().map(|t| TraceRecord::from_trace(t, true)).collect();
        assert_eq!(got, expect, "stream must be in batch-index order");
    }

    #[test]
    fn stream_is_worker_count_invariant() {
        let run = |workers: usize| {
            let chan = Arc::new(TraceChannel::bounded(7));
            let consumer = drain(chan.clone());
            stream_prior_traces(|_| BranchingModel::standard(), &cfg(60, 12, workers), &chan)
                .unwrap();
            consumer.join().unwrap()
        };
        let one = run(1);
        assert_eq!(one.len(), 60);
        assert_eq!(one, run(4), "stream content+order must not depend on worker count");
    }

    #[test]
    fn streaming_tasks_run_ascending_so_the_reorder_window_never_stalls() {
        // n far beyond the reorder window (capacity·2 + 64) on one worker:
        // under the default block fill (drained back-to-front) every
        // delivery would park against the window for its full wait budget
        // (~0.2 s each, minutes total); the explicit ascending task order
        // keeps the contiguous prefix advancing instead.
        let chan = Arc::new(TraceChannel::bounded(4));
        let consumer = drain(chan.clone());
        let t0 = std::time::Instant::now();
        stream_prior_traces(|_| BranchingModel::standard(), &cfg(500, 9, 1), &chan).unwrap();
        let got = consumer.join().unwrap();
        assert_eq!(got.len(), 500);
        assert!(
            t0.elapsed() < std::time::Duration::from_secs(20),
            "stream stalled against the reorder window"
        );
    }

    #[test]
    fn teed_stream_matches_batch_pipeline_bytes_and_replays_on_resume() {
        let c = cfg(50, 77, 3);
        let ckpt = CheckpointConfig { interval: 6 };

        // Reference: the plain batch pipeline.
        let dir_ref = tmpdir("tee_ref");
        let reference =
            generate_dataset_resumable(|_| BranchingModel::standard(), &c, &dir_ref, &ckpt, None)
                .unwrap();

        // Teed streaming run, killed partway.
        let dir = tmpdir("tee_run");
        let chan = Arc::new(TraceChannel::bounded(4));
        let consumer = drain(chan.clone());
        let kill = Arc::new(KillSwitch::after(23));
        let err = stream_dataset_resumable(
            |_| BranchingModel::standard(),
            &c,
            &dir,
            &ckpt,
            Some(kill),
            &chan,
        )
        .map(|_| ())
        .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Interrupted);
        let partial = consumer.join().unwrap();
        assert!(partial.len() < 50, "the kill must cut the stream short");

        // Resume with a fresh channel: prefix replay + live remainder must
        // reproduce the full stream, and shards must match the reference.
        let chan = Arc::new(TraceChannel::bounded(4));
        let consumer = drain(chan.clone());
        let ds =
            stream_dataset_resumable(|_| BranchingModel::standard(), &c, &dir, &ckpt, None, &chan)
                .unwrap();
        let full = consumer.join().unwrap();
        assert_eq!(full.len(), 50);
        assert_eq!(ds.len(), 50);
        assert_eq!(ds.shards.len(), reference.shards.len());
        for (a, b) in ds.shards.iter().zip(&reference.shards) {
            assert_eq!(a.file_name(), b.file_name());
            assert_eq!(
                std::fs::read(a).unwrap(),
                std::fs::read(b).unwrap(),
                "teed shard {a:?} differs from the batch pipeline"
            );
        }
        // The stream equals the teed shards read back in dataset order.
        let all: Vec<usize> = (0..ds.len()).collect();
        assert_eq!(full, ds.get_many(&all).unwrap(), "stream must equal shard replay");
        std::fs::remove_dir_all(&dir_ref).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn multi_partition_tee_is_rejected() {
        let chan = TraceChannel::bounded(4);
        let c = DatasetGenConfig { partitions: 2, ..cfg(10, 1, 1) };
        let err = stream_dataset_resumable(
            |_| BranchingModel::standard(),
            &c,
            &tmpdir("multi"),
            &CheckpointConfig::default(),
            None,
            &chan,
        )
        .map(|_| ())
        .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        assert!(chan.is_closed(), "even a rejected run must close the channel");
    }

    #[test]
    fn closed_channel_does_not_stall_the_tee() {
        // Consumer walks away immediately: the teed run must still finish
        // and produce complete shards.
        let dir = tmpdir("walkaway");
        let chan = TraceChannel::bounded(2);
        chan.close();
        let ds = stream_dataset_resumable(
            |_| BranchingModel::standard(),
            &cfg(30, 5, 2),
            &dir,
            &CheckpointConfig { interval: 5 },
            None,
            &chan,
        )
        .unwrap();
        assert_eq!(ds.len(), 30);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tee_sink_forwards_accept_and_reject_to_both() {
        use etalumis_core::Executor;
        let a = CollectSink::new(3);
        let b = CollectSink::new(3);
        let tee = TeeSink::new(&a, &b);
        let mut m = BranchingModel::standard();
        tee.accept(0, Executor::sample_prior(&mut m, 0));
        tee.reject(1, "dead");
        tee.accept(2, Executor::sample_prior(&mut m, 2));
        let (da, ma) = a.into_results();
        let (db, mb) = b.into_results();
        assert_eq!(da.iter().map(|(i, _)| *i).collect::<Vec<_>>(), vec![0, 2]);
        assert_eq!(db.iter().map(|(i, _)| *i).collect::<Vec<_>>(), vec![0, 2]);
        assert_eq!(ma, vec![1]);
        assert_eq!(mb, vec![1]);
    }
}
