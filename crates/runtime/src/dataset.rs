//! Parallel trace-dataset generation on the runtime.
//!
//! The paper's offline training mode needs millions of prior traces on disk
//! (15M for the τ benchmark); generation throughput is simulator-bound and
//! embarrassingly parallel, so this module runs it on the full runtime
//! stack: a [`SimulatorPool`] of model instances, the work-stealing
//! [`BatchRunner`], and a [`ShardedTraceSink`] streaming completions into
//! `etalumis-data` shard files partitioned by trace type. The serial
//! `etalumis_data::generate_dataset` remains the 1-worker reference path.

use crate::batch::{BatchRunner, KillSwitch, RunStats, RuntimeConfig};
use crate::checkpoint::{Checkpoint, CheckpointConfig, CheckpointSink, ShardLayout};
use crate::oversub::MuxSimulatorPool;
use crate::pool::SimulatorPool;
use crate::sink::{ShardedTraceSink, TraceSink};
use etalumis_core::{ObserveMap, ProbProgram, Trace};
use etalumis_data::{RollingShardWriter, TraceDataset, TraceRecord};
use parking_lot::Mutex;
use std::path::Path;
use std::sync::Arc;

/// Knobs for [`generate_dataset_parallel`].
#[derive(Clone, Copy, Debug)]
pub struct DatasetGenConfig {
    /// Traces to generate.
    pub n: usize,
    /// Records per shard file before rolling.
    pub traces_per_shard: usize,
    /// Trace-type hash partitions (independent shard streams).
    pub partitions: usize,
    /// Worker threads / pooled simulator instances (0 = all cores).
    pub workers: usize,
    /// Batch seed; trace `i` derives its RNG from `(seed, i)` only.
    pub seed: u64,
    /// Prune records to controlled entries + observation (training layout).
    pub pruned: bool,
    /// `true`: buffer records and write each partition in batch-index order
    /// — shard files are byte-identical for any worker count (costs O(n)
    /// memory; right for benchmarks and tests). `false`: stream through the
    /// [`ShardedTraceSink`] in completion order — constant memory, the
    /// multiset of records is still worker-count invariant but their order
    /// within a partition is not.
    pub ordered: bool,
}

impl Default for DatasetGenConfig {
    fn default() -> Self {
        Self {
            n: 0,
            traces_per_shard: 10_000,
            partitions: 4,
            workers: 0,
            seed: 0,
            pruned: true,
            ordered: false,
        }
    }
}

/// Buffers records by batch index so partitions can be written in a
/// deterministic order after the run (the `ordered` generation mode).
struct OrderedRecordSink {
    slots: Mutex<Vec<Option<TraceRecord>>>,
    pruned: bool,
}

impl TraceSink for OrderedRecordSink {
    fn accept(&self, index: usize, trace: Trace) {
        self.slots.lock()[index] = Some(TraceRecord::from_trace(&trace, self.pruned));
    }
}

/// Shared generation driver: `run` executes the batch against whatever sink
/// the mode needs; the writer side is identical for local pools and
/// multiplexed remote pools. Failed traces (dead remote sessions) surface
/// as an error — a training dataset must not silently miss records.
fn generate_with(
    run: impl FnOnce(&dyn TraceSink) -> RunStats,
    cfg: &DatasetGenConfig,
    dir: &Path,
) -> std::io::Result<TraceDataset> {
    if cfg.ordered {
        let sink = OrderedRecordSink { slots: Mutex::new(vec![None; cfg.n]), pruned: cfg.pruned };
        let stats = run(&sink);
        fail_on_failures(&stats)?;
        // Same partitioning and file naming as the streaming sink (shared
        // helpers on ShardedTraceSink), but fed in batch-index order.
        let partitions = cfg.partitions.max(1);
        let mut writers: Vec<RollingShardWriter> = (0..partitions)
            .map(|p| {
                RollingShardWriter::new(
                    dir,
                    ShardedTraceSink::partition_prefix(p),
                    cfg.traces_per_shard,
                    true,
                )
            })
            .collect();
        // Undelivered slots past the failure check would mean an accounting
        // bug in the runner; surface it as an error, not a panic.
        let mut missing = Vec::new();
        for (i, slot) in sink.slots.into_inner().into_iter().enumerate() {
            match slot {
                Some(rec) => {
                    writers[ShardedTraceSink::partition_of(rec.trace_type, partitions)].push(rec)?
                }
                None => missing.push(i),
            }
        }
        if let Some(&first) = missing.first() {
            return Err(std::io::Error::other(format!(
                "{} trace(s) were neither delivered nor recorded as failed (first: {first})",
                missing.len()
            )));
        }
        let mut paths = Vec::new();
        for w in writers {
            paths.extend(w.finish()?);
        }
        TraceDataset::open(paths)
    } else {
        let sink = ShardedTraceSink::new(dir, cfg.partitions, cfg.traces_per_shard, cfg.pruned);
        let stats = run(&sink);
        fail_on_failures(&stats)?;
        TraceDataset::open(sink.finish()?)
    }
}

fn fail_on_failures(stats: &RunStats) -> std::io::Result<()> {
    if let Some((i, e)) = stats.failures.first() {
        return Err(std::io::Error::other(format!(
            "{} trace(s) failed during dataset generation (first: trace {i}: {e})",
            stats.failures.len()
        )));
    }
    Ok(())
}

/// Generate `cfg.n` prior traces in parallel and shard them under `dir`.
///
/// Returns the opened [`TraceDataset`]. The record *multiset* is always a
/// pure function of `(factory, cfg.seed)` regardless of worker count;
/// `cfg.ordered` additionally pins the on-disk order (see its doc).
pub fn generate_dataset_parallel<P, F>(
    factory: F,
    cfg: &DatasetGenConfig,
    dir: &Path,
) -> std::io::Result<TraceDataset>
where
    P: ProbProgram + Send + 'static,
    F: Fn(usize) -> P,
{
    let workers = RuntimeConfig { workers: cfg.workers, ..Default::default() }.resolved_workers();
    let mut pool = SimulatorPool::from_factory(workers, factory);
    let runner = BatchRunner::new(RuntimeConfig { workers, stealing: true });
    let observes = ObserveMap::new();
    generate_with(|sink| runner.run_prior(&mut pool, &observes, cfg.n, cfg.seed, sink), cfg, dir)
}

/// [`generate_dataset_parallel`] over a multiplexed remote-session pool:
/// `cfg.workers` reactor threads (0 = all cores, capped at the session
/// count) drive the pool's K sessions. Per-trace seeding is unchanged, so
/// the produced records match the local/blocking paths for the same model
/// and seed.
pub fn generate_dataset_mux(
    pool: &mut MuxSimulatorPool,
    cfg: &DatasetGenConfig,
    dir: &Path,
) -> std::io::Result<TraceDataset> {
    let workers = cfg.workers.min(pool.len());
    let runner = BatchRunner::new(RuntimeConfig { workers, stealing: true });
    let observes = ObserveMap::new();
    generate_with(|sink| runner.run_mux_prior(pool, &observes, cfg.n, cfg.seed, sink), cfg, dir)
}

impl DatasetGenConfig {
    /// The shard-layout slice of this config (what a checkpoint validates).
    pub fn layout(&self) -> ShardLayout {
        ShardLayout {
            n: self.n,
            seed: self.seed,
            partitions: self.partitions.max(1),
            traces_per_shard: self.traces_per_shard,
            pruned: self.pruned,
        }
    }
}

/// Shared driver for the checkpointed generators: build or resume the
/// [`CheckpointSink`], run the remaining indices, surface kills and
/// failures, finalize.
fn generate_resumable_with(
    run: impl FnOnce(&BatchRunner, &CheckpointSink) -> RunStats,
    runner: BatchRunner,
    cfg: &DatasetGenConfig,
    dir: &Path,
    ckpt: &CheckpointConfig,
    kill: Option<Arc<KillSwitch>>,
) -> std::io::Result<TraceDataset> {
    let layout = cfg.layout();
    let (sink, remaining) = match Checkpoint::load(dir)? {
        Some(manifest) => {
            let sink = CheckpointSink::resume(dir, layout, ckpt, &manifest)?;
            (sink, manifest.remaining())
        }
        None => (CheckpointSink::new(dir, layout, ckpt), (0..cfg.n).collect()),
    };
    let mut runner = runner.with_tasks(remaining);
    if let Some(k) = kill {
        runner = runner.with_kill_switch(k);
    }
    let stats = run(&runner, &sink);
    if stats.killed {
        // Simulated process death: leave the manifest + journals exactly as
        // they stand; the same call resumes the run.
        return Err(std::io::Error::new(
            std::io::ErrorKind::Interrupted,
            format!(
                "dataset generation killed at watermark {} of {} (resume with the same call)",
                sink.watermark(),
                cfg.n
            ),
        ));
    }
    let failed = sink.failed();
    if !failed.is_empty() {
        return Err(std::io::Error::other(format!(
            "{} trace(s) failed permanently during checkpointed generation (first: trace {})",
            failed.len(),
            failed[0]
        )));
    }
    fail_on_failures(&stats)?;
    TraceDataset::open(sink.finalize()?)
}

/// Checkpointed, restartable [`generate_dataset_parallel`].
///
/// Every [`CheckpointConfig::interval`] committed traces a manifest is
/// atomically written next to the shards; if the process dies (or the
/// optional `kill` switch fires — the test hook simulating `SIGKILL`),
/// calling this function again with the same arguments resumes from the
/// manifest and produces shard files **byte-identical** to an uninterrupted
/// run. Shards are written in batch-index order per partition (the same
/// bytes `cfg.ordered` generation produces) regardless of worker count.
pub fn generate_dataset_resumable<P, F>(
    factory: F,
    cfg: &DatasetGenConfig,
    dir: &Path,
    ckpt: &CheckpointConfig,
    kill: Option<Arc<KillSwitch>>,
) -> std::io::Result<TraceDataset>
where
    P: ProbProgram + Send + 'static,
    F: Fn(usize) -> P,
{
    let workers = RuntimeConfig { workers: cfg.workers, ..Default::default() }.resolved_workers();
    let mut pool = SimulatorPool::from_factory(workers, factory);
    let observes = ObserveMap::new();
    generate_resumable_with(
        |runner, sink| runner.run_prior(&mut pool, &observes, cfg.n, cfg.seed, sink),
        BatchRunner::new(RuntimeConfig { workers, stealing: true }),
        cfg,
        dir,
        ckpt,
        kill,
    )
}

/// Checkpointed, restartable [`generate_dataset_mux`]: the same manifest
/// protocol over a multiplexed remote-session pool, composing with the
/// pool's mid-batch session respawn.
pub fn generate_dataset_mux_resumable(
    pool: &mut MuxSimulatorPool,
    cfg: &DatasetGenConfig,
    dir: &Path,
    ckpt: &CheckpointConfig,
    kill: Option<Arc<KillSwitch>>,
) -> std::io::Result<TraceDataset> {
    let workers = if cfg.workers == 0 { pool.len() } else { cfg.workers.min(pool.len()) };
    let observes = ObserveMap::new();
    generate_resumable_with(
        |runner, sink| runner.run_mux_prior(pool, &observes, cfg.n, cfg.seed, sink),
        BatchRunner::new(RuntimeConfig { workers, stealing: true }),
        cfg,
        dir,
        ckpt,
        kill,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use etalumis_simulators::BranchingModel;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("etalumis_rtds_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn parallel_generation_delivers_every_trace() {
        let dir = tmpdir("gen");
        let cfg = DatasetGenConfig {
            n: 70,
            traces_per_shard: 16,
            partitions: 2,
            workers: 3,
            seed: 21,
            ..Default::default()
        };
        let ds = generate_dataset_parallel(|_| BranchingModel::standard(), &cfg, &dir).unwrap();
        assert_eq!(ds.len(), 70);
        assert!(ds.num_trace_types() >= 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn trace_type_multiset_is_worker_count_invariant() {
        let dir1 = tmpdir("w1");
        let dir4 = tmpdir("w4");
        let base = DatasetGenConfig {
            n: 50,
            traces_per_shard: 8,
            partitions: 3,
            seed: 9,
            workers: 1,
            ..Default::default()
        };
        let d1 = generate_dataset_parallel(|_| BranchingModel::standard(), &base, &dir1).unwrap();
        let cfg4 = DatasetGenConfig { workers: 4, ..base };
        let d4 = generate_dataset_parallel(|_| BranchingModel::standard(), &cfg4, &dir4).unwrap();
        assert_eq!(d1.trace_type_counts(), d4.trace_type_counts());
        std::fs::remove_dir_all(&dir1).unwrap();
        std::fs::remove_dir_all(&dir4).unwrap();
    }

    #[test]
    fn mux_generation_matches_local_generation_byte_for_byte() {
        use etalumis_ppx::{InProcMuxEndpoint, MuxEndpoint, SimulatorServer};
        let dir_local = tmpdir("mux_ref");
        let dir_mux = tmpdir("mux_gen");
        let cfg = DatasetGenConfig {
            n: 40,
            traces_per_shard: 8,
            partitions: 2,
            seed: 19,
            workers: 1,
            ordered: true,
            ..Default::default()
        };
        let local =
            generate_dataset_parallel(|_| BranchingModel::standard(), &cfg, &dir_local).unwrap();

        // The same generation driven through 4 remote sessions on 1 reactor
        // worker: remote address construction matches local construction,
        // so even the shard bytes agree.
        let mut pool = crate::MuxSimulatorPool::connect(4, "etalumis-rs", |_| {
            let (ep, sim_side) = InProcMuxEndpoint::pair();
            std::thread::spawn(move || {
                let mut server = SimulatorServer::new("ds", BranchingModel::standard());
                let mut t = sim_side;
                let _ = server.serve(&mut t);
            });
            Ok(Box::new(ep) as Box<dyn MuxEndpoint>)
        })
        .unwrap();
        let remote = generate_dataset_mux(&mut pool, &cfg, &dir_mux).unwrap();

        assert_eq!(local.len(), remote.len());
        assert_eq!(local.shards.len(), remote.shards.len());
        for (a, b) in local.shards.iter().zip(&remote.shards) {
            assert_eq!(a.file_name(), b.file_name());
            assert_eq!(
                std::fs::read(a).unwrap(),
                std::fs::read(b).unwrap(),
                "shard {a:?} differs between local and mux generation"
            );
        }
        std::fs::remove_dir_all(&dir_local).unwrap();
        std::fs::remove_dir_all(&dir_mux).unwrap();
    }

    fn assert_same_shard_bytes(a: &TraceDataset, b: &TraceDataset, label: &str) {
        assert_eq!(a.shards.len(), b.shards.len(), "{label}: shard count");
        for (x, y) in a.shards.iter().zip(&b.shards) {
            assert_eq!(x.file_name(), y.file_name(), "{label}");
            assert_eq!(
                std::fs::read(x).unwrap(),
                std::fs::read(y).unwrap(),
                "{label}: shard {x:?} differs"
            );
        }
    }

    #[test]
    fn resumable_generation_matches_ordered_generation_byte_for_byte() {
        let dir_ord = tmpdir("ck_ord");
        let dir_ck = tmpdir("ck_run");
        let cfg = DatasetGenConfig {
            n: 90,
            traces_per_shard: 16,
            partitions: 3,
            seed: 27,
            workers: 4,
            ordered: true,
            ..Default::default()
        };
        let ordered =
            generate_dataset_parallel(|_| BranchingModel::standard(), &cfg, &dir_ord).unwrap();
        // An uninterrupted checkpointed run writes the same bytes: commit
        // order is batch-index order, exactly like ordered mode.
        let ck = generate_dataset_resumable(
            |_| BranchingModel::standard(),
            &cfg,
            &dir_ck,
            &CheckpointConfig { interval: 10 },
            None,
        )
        .unwrap();
        assert_eq!(ck.len(), 90);
        assert_same_shard_bytes(&ck, &ordered, "checkpointed vs ordered");
        // Nothing transient is left behind: no manifest, no journals.
        assert!(!dir_ck.join(crate::MANIFEST_NAME).exists());
        assert!(std::fs::read_dir(&dir_ck).unwrap().all(|e| e
            .unwrap()
            .path()
            .extension()
            .unwrap()
            == "etlm"));
        std::fs::remove_dir_all(&dir_ord).unwrap();
        std::fs::remove_dir_all(&dir_ck).unwrap();
    }

    #[test]
    fn killed_and_resumed_generation_is_byte_identical_to_uninterrupted() {
        let cfg = DatasetGenConfig {
            n: 80,
            traces_per_shard: 8,
            partitions: 2,
            seed: 55,
            workers: 3,
            ..Default::default()
        };
        let ckpt = CheckpointConfig { interval: 7 };
        let dir_ref = tmpdir("kill_ref");
        let reference =
            generate_dataset_resumable(|_| BranchingModel::standard(), &cfg, &dir_ref, &ckpt, None)
                .unwrap();

        for kill_at in [1usize, 13, 40, 79] {
            let dir = tmpdir(&format!("kill_{kill_at}"));
            let kill = Arc::new(KillSwitch::after(kill_at));
            let err = generate_dataset_resumable(
                |_| BranchingModel::standard(),
                &cfg,
                &dir,
                &ckpt,
                Some(kill),
            )
            .map(|_| ())
            .expect_err("the kill switch must abort the run");
            assert_eq!(err.kind(), std::io::ErrorKind::Interrupted, "kill_at={kill_at}");
            // Resume: same call, no kill switch.
            let resumed =
                generate_dataset_resumable(|_| BranchingModel::standard(), &cfg, &dir, &ckpt, None)
                    .unwrap();
            assert_eq!(resumed.len(), cfg.n, "kill_at={kill_at}");
            assert_same_shard_bytes(&resumed, &reference, &format!("kill_at={kill_at}"));
            assert!(!dir.join(crate::MANIFEST_NAME).exists());
            std::fs::remove_dir_all(&dir).unwrap();
        }
        std::fs::remove_dir_all(&dir_ref).unwrap();
    }

    #[test]
    fn mux_resumable_generation_survives_kill_and_matches_local() {
        use etalumis_ppx::{InProcMuxEndpoint, MuxEndpoint, SimulatorServer};
        let cfg = DatasetGenConfig {
            n: 40,
            traces_per_shard: 8,
            partitions: 2,
            seed: 19,
            workers: 1,
            ..Default::default()
        };
        let ckpt = CheckpointConfig { interval: 5 };
        let dir_ref = tmpdir("muxck_ref");
        let reference =
            generate_dataset_resumable(|_| BranchingModel::standard(), &cfg, &dir_ref, &ckpt, None)
                .unwrap();

        let connect = || {
            crate::MuxSimulatorPool::connect(4, "etalumis-rs", |_| {
                let (ep, sim_side) = InProcMuxEndpoint::pair();
                std::thread::spawn(move || {
                    let mut server = SimulatorServer::new("ds", BranchingModel::standard());
                    let mut t = sim_side;
                    let _ = server.serve(&mut t);
                });
                Ok(Box::new(ep) as Box<dyn MuxEndpoint>)
            })
            .unwrap()
        };
        let dir = tmpdir("muxck_run");
        let mut pool = connect();
        let kill = Arc::new(KillSwitch::after(17));
        let err = generate_dataset_mux_resumable(&mut pool, &cfg, &dir, &ckpt, Some(kill))
            .map(|_| ())
            .expect_err("kill must abort");
        assert_eq!(err.kind(), std::io::ErrorKind::Interrupted);
        // Resume over a *fresh* pool — the old process is "dead".
        let mut pool = connect();
        let resumed = generate_dataset_mux_resumable(&mut pool, &cfg, &dir, &ckpt, None).unwrap();
        assert_eq!(resumed.len(), cfg.n);
        assert_same_shard_bytes(&resumed, &reference, "mux killed+resumed vs local");
        std::fs::remove_dir_all(&dir_ref).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn ordered_generation_is_byte_identical_across_worker_counts() {
        let dir1 = tmpdir("ord1");
        let dir4 = tmpdir("ord4");
        let base = DatasetGenConfig {
            n: 60,
            traces_per_shard: 16,
            partitions: 2,
            seed: 33,
            workers: 1,
            ordered: true,
            ..Default::default()
        };
        let d1 = generate_dataset_parallel(|_| BranchingModel::standard(), &base, &dir1).unwrap();
        let cfg4 = DatasetGenConfig { workers: 4, ..base };
        let d4 = generate_dataset_parallel(|_| BranchingModel::standard(), &cfg4, &dir4).unwrap();
        assert_eq!(d1.shards.len(), d4.shards.len());
        for (a, b) in d1.shards.iter().zip(&d4.shards) {
            assert_eq!(a.file_name(), b.file_name());
            assert_eq!(
                std::fs::read(a).unwrap(),
                std::fs::read(b).unwrap(),
                "shard {a:?} differs between worker counts"
            );
        }
        std::fs::remove_dir_all(&dir1).unwrap();
        std::fs::remove_dir_all(&dir4).unwrap();
    }
}
