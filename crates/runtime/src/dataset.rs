//! Parallel trace-dataset generation on the runtime.
//!
//! The paper's offline training mode needs millions of prior traces on disk
//! (15M for the τ benchmark); generation throughput is simulator-bound and
//! embarrassingly parallel, so this module runs it on the full runtime
//! stack: a [`SimulatorPool`] of model instances, the work-stealing
//! [`BatchRunner`], and a [`ShardedTraceSink`] streaming completions into
//! `etalumis-data` shard files partitioned by trace type. The serial
//! `etalumis_data::generate_dataset` remains the 1-worker reference path.

use crate::batch::{BatchRunner, KillSwitch, RunStats, RuntimeConfig};
use crate::checkpoint::{Checkpoint, CheckpointConfig, CheckpointSink, ShardLayout};
use crate::oversub::MuxSimulatorPool;
use crate::pool::SimulatorPool;
use crate::sink::{ShardedTraceSink, TraceSink};
use etalumis_core::{ObserveMap, ProbProgram, Trace};
use etalumis_data::{
    partition_prefix, rank_slice, RankManifest, RollingShardWriter, TraceDataset, TraceRecord,
};
use parking_lot::Mutex;
use std::ops::Range;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Knobs for [`generate_dataset_parallel`].
#[derive(Clone, Copy, Debug)]
pub struct DatasetGenConfig {
    /// Traces to generate.
    pub n: usize,
    /// Records per shard file before rolling.
    pub traces_per_shard: usize,
    /// Trace-type hash partitions (independent shard streams).
    pub partitions: usize,
    /// Worker threads / pooled simulator instances (0 = all cores).
    pub workers: usize,
    /// Batch seed; trace `i` derives its RNG from `(seed, i)` only.
    pub seed: u64,
    /// Prune records to controlled entries + observation (training layout).
    pub pruned: bool,
    /// `true`: buffer records and write each partition in batch-index order
    /// — shard files are byte-identical for any worker count (costs O(n)
    /// memory; right for benchmarks and tests). `false`: stream through the
    /// [`ShardedTraceSink`] in completion order — constant memory, the
    /// multiset of records is still worker-count invariant but their order
    /// within a partition is not.
    pub ordered: bool,
}

impl Default for DatasetGenConfig {
    fn default() -> Self {
        Self {
            n: 0,
            traces_per_shard: 10_000,
            partitions: 4,
            workers: 0,
            seed: 0,
            pruned: true,
            ordered: false,
        }
    }
}

/// Buffers records by batch index so partitions can be written in a
/// deterministic order after the run (the `ordered` generation mode).
struct OrderedRecordSink {
    slots: Mutex<Vec<Option<TraceRecord>>>,
    pruned: bool,
}

impl TraceSink for OrderedRecordSink {
    fn accept(&self, index: usize, trace: Trace) {
        self.slots.lock()[index] = Some(TraceRecord::from_trace(&trace, self.pruned));
    }
}

/// Shared generation driver: `run` executes the batch against whatever sink
/// the mode needs; the writer side is identical for local pools and
/// multiplexed remote pools. Failed traces (dead remote sessions) surface
/// as an error — a training dataset must not silently miss records.
fn generate_with(
    run: impl FnOnce(&dyn TraceSink) -> RunStats,
    cfg: &DatasetGenConfig,
    dir: &Path,
) -> std::io::Result<TraceDataset> {
    if cfg.ordered {
        let sink = OrderedRecordSink { slots: Mutex::new(vec![None; cfg.n]), pruned: cfg.pruned };
        let stats = run(&sink);
        fail_on_failures(&stats)?;
        // Same partitioning and file naming as the streaming sink (shared
        // helpers on ShardedTraceSink), but fed in batch-index order.
        let partitions = cfg.partitions.max(1);
        let mut writers: Vec<RollingShardWriter> = (0..partitions)
            .map(|p| {
                RollingShardWriter::new(
                    dir,
                    ShardedTraceSink::partition_prefix(p),
                    cfg.traces_per_shard,
                    true,
                )
            })
            .collect();
        // Undelivered slots past the failure check would mean an accounting
        // bug in the runner; surface it as an error, not a panic.
        let mut missing = Vec::new();
        for (i, slot) in sink.slots.into_inner().into_iter().enumerate() {
            match slot {
                Some(rec) => {
                    writers[ShardedTraceSink::partition_of(rec.trace_type, partitions)].push(rec)?
                }
                None => missing.push(i),
            }
        }
        if let Some(&first) = missing.first() {
            return Err(std::io::Error::other(format!(
                "{} trace(s) were neither delivered nor recorded as failed (first: {first})",
                missing.len()
            )));
        }
        let mut paths = Vec::new();
        for w in writers {
            paths.extend(w.finish()?);
        }
        TraceDataset::open(paths)
    } else {
        let sink = ShardedTraceSink::new(dir, cfg.partitions, cfg.traces_per_shard, cfg.pruned);
        let stats = run(&sink);
        fail_on_failures(&stats)?;
        TraceDataset::open(sink.finish()?)
    }
}

pub(crate) fn fail_on_failures(stats: &RunStats) -> std::io::Result<()> {
    if let Some((i, e)) = stats.failures.first() {
        return Err(std::io::Error::other(format!(
            "{} trace(s) failed during dataset generation (first: trace {i}: {e})",
            stats.failures.len()
        )));
    }
    Ok(())
}

/// Generate `cfg.n` prior traces in parallel and shard them under `dir`.
///
/// Returns the opened [`TraceDataset`]. The record *multiset* is always a
/// pure function of `(factory, cfg.seed)` regardless of worker count;
/// `cfg.ordered` additionally pins the on-disk order (see its doc).
pub fn generate_dataset_parallel<P, F>(
    factory: F,
    cfg: &DatasetGenConfig,
    dir: &Path,
) -> std::io::Result<TraceDataset>
where
    P: ProbProgram + Send + 'static,
    F: Fn(usize) -> P,
{
    let workers = RuntimeConfig { workers: cfg.workers, ..Default::default() }.resolved_workers();
    let mut pool = SimulatorPool::from_factory(workers, factory);
    let runner = BatchRunner::new(RuntimeConfig { workers, stealing: true });
    let observes = ObserveMap::new();
    generate_with(|sink| runner.run_prior(&mut pool, &observes, cfg.n, cfg.seed, sink), cfg, dir)
}

/// [`generate_dataset_parallel`] over a multiplexed remote-session pool:
/// `cfg.workers` reactor threads (0 = all cores, capped at the session
/// count) drive the pool's K sessions. Per-trace seeding is unchanged, so
/// the produced records match the local/blocking paths for the same model
/// and seed.
pub fn generate_dataset_mux(
    pool: &mut MuxSimulatorPool,
    cfg: &DatasetGenConfig,
    dir: &Path,
) -> std::io::Result<TraceDataset> {
    let workers = cfg.workers.min(pool.len());
    let runner = BatchRunner::new(RuntimeConfig { workers, stealing: true });
    let observes = ObserveMap::new();
    generate_with(|sink| runner.run_mux_prior(pool, &observes, cfg.n, cfg.seed, sink), cfg, dir)
}

impl DatasetGenConfig {
    /// The shard-layout slice of this config (what a checkpoint validates).
    pub fn layout(&self) -> ShardLayout {
        ShardLayout {
            n: self.n,
            seed: self.seed,
            base: 0,
            partitions: self.partitions.max(1),
            traces_per_shard: self.traces_per_shard,
            pruned: self.pruned,
        }
    }
}

/// Translates global batch indices into a slice-local sink's index space.
///
/// A distributed rank owns the contiguous global slice `base..base+m`; its
/// [`CheckpointSink`] (and checkpoint manifest) work in local indices
/// `0..m` so the watermark/journal machinery is oblivious to where in the
/// fleet the slice sits. The [`BatchRunner`] meanwhile must schedule
/// *global* indices — per-trace seeding (`mix_seed(seed, global_i)`) is
/// what makes a rank's records byte-identical to the same indices of a
/// single-process run. This adapter bridges the two index spaces.
struct OffsetSink<'a, S: TraceSink> {
    base: usize,
    inner: &'a S,
}

impl<S: TraceSink> TraceSink for OffsetSink<'_, S> {
    fn accept(&self, index: usize, trace: Trace) {
        self.inner.accept(index - self.base, trace);
    }

    fn reject(&self, index: usize, error: &str) {
        self.inner.reject(index - self.base, error);
    }
}

/// Shared driver for the checkpointed generators: build or resume the
/// [`CheckpointSink`] for `slice` of the global batch, run the remaining
/// indices, surface kills, heal manifest-recorded permanent failures, and
/// finalize.
///
/// The healing pass closes PR 4's known correctness hole: an index whose
/// retry budget ran out *below* the commit watermark used to stay failed
/// across every resume (re-running it could not change the committed shard
/// bytes). After the main pass completes, any still-failed indices are
/// re-run once more with a fresh retry budget and their records staged
/// through the repair journal into trailing `repair_*` shards — committed
/// shards keep their exact bytes, and a transient outage before a crash no
/// longer becomes a permanent dataset hole.
///
/// Returns the opened dataset, the aggregated stats of every pass, and the
/// *global* indices that stayed failed even after healing.
///
/// `tolerate_failures` decides what a post-healing permanent failure means:
/// `false` (single-process) returns an error *before* finalizing, so the
/// checkpoint manifest and journals survive and a later call can resume
/// and re-heal; `true` (distributed ranks) completes the slice with the
/// holes reported, so the fleet's merge can surface them in one place.
fn generate_slice_resumable_with(
    mut run: impl FnMut(&BatchRunner, &dyn TraceSink) -> RunStats,
    runner: BatchRunner,
    cfg: &DatasetGenConfig,
    slice: Range<usize>,
    dir: &Path,
    ckpt: &CheckpointConfig,
    kill: Option<Arc<KillSwitch>>,
    tolerate_failures: bool,
) -> std::io::Result<(TraceDataset, RunStats, Vec<u64>)> {
    let base = slice.start;
    let layout = ShardLayout { n: slice.len(), base, ..cfg.layout() };
    let (sink, remaining) = match Checkpoint::load(dir)? {
        Some(manifest) => {
            let sink = CheckpointSink::resume(dir, layout, ckpt, &manifest)?;
            (sink, manifest.remaining())
        }
        None => (CheckpointSink::new(dir, layout, ckpt), (0..layout.n).collect()),
    };
    let tasks: Vec<usize> = remaining.iter().map(|&i| i + base).collect();
    let mut main_runner = runner.clone().with_tasks(tasks);
    if let Some(k) = &kill {
        main_runner = main_runner.with_kill_switch(k.clone());
    }
    let mut stats = run(&main_runner, &OffsetSink { base, inner: &sink });
    if stats.killed {
        // Simulated process death: leave the manifest + journals exactly as
        // they stand; the same call resumes the run.
        return Err(std::io::Error::new(
            std::io::ErrorKind::Interrupted,
            format!(
                "dataset generation killed at watermark {} of {}..{} (resume with the same call)",
                base + sink.watermark(),
                base,
                slice.end
            ),
        ));
    }
    // Healing pass: replay any previous attempt's repair journal, then
    // re-run whatever is still owed with a fresh retry budget.
    let holes = sink.begin_repair()?;
    if !holes.is_empty() {
        let heal_tasks: Vec<usize> = holes.iter().map(|&i| i as usize + base).collect();
        let mut heal_runner = runner.clone().with_tasks(heal_tasks);
        if let Some(k) = &kill {
            heal_runner = heal_runner.with_kill_switch(k.clone());
        }
        let repair = sink.repair_sink();
        let heal_stats = run(&heal_runner, &OffsetSink { base, inner: &repair });
        let heal_killed = heal_stats.killed;
        stats.absorb(&heal_stats);
        if heal_killed {
            return Err(std::io::Error::new(
                std::io::ErrorKind::Interrupted,
                format!(
                    "dataset generation killed during the healing pass of {}..{} \
                     (resume with the same call)",
                    base, slice.end
                ),
            ));
        }
    }
    let failed: Vec<u64> = sink.failed().iter().map(|&i| i + base as u64).collect();
    if !tolerate_failures {
        if let Some(&first) = failed.first() {
            // Leave the manifest and journals in place: the failures may be
            // a transient outage, and the same call will resume, replay the
            // repair journal, and heal again.
            return Err(std::io::Error::other(format!(
                "{} trace(s) failed permanently during checkpointed generation, even \
                 after the healing pass (first: trace {first}; resume with the same \
                 call to retry)",
                failed.len(),
            )));
        }
    }
    // Failures the healing pass recovered are not failures of the run;
    // report only the permanent ones.
    stats.failures.retain(|&(i, _)| failed.binary_search(&(i as u64)).is_ok());
    let dataset = TraceDataset::open(sink.finalize()?)?;
    Ok((dataset, stats, failed))
}

/// Single-process wrapper around [`generate_slice_resumable_with`]: the
/// whole range `0..n`, and any post-healing permanent failure is an error
/// (a training dataset must not silently miss records).
fn generate_resumable_with(
    run: impl FnMut(&BatchRunner, &dyn TraceSink) -> RunStats,
    runner: BatchRunner,
    cfg: &DatasetGenConfig,
    dir: &Path,
    ckpt: &CheckpointConfig,
    kill: Option<Arc<KillSwitch>>,
) -> std::io::Result<TraceDataset> {
    generate_slice_resumable_with(run, runner, cfg, 0..cfg.n, dir, ckpt, kill, false)
        .map(|(dataset, _, _)| dataset)
}

/// Checkpointed, restartable [`generate_dataset_parallel`].
///
/// Every [`CheckpointConfig::interval`] committed traces a manifest is
/// atomically written next to the shards; if the process dies (or the
/// optional `kill` switch fires — the test hook simulating `SIGKILL`),
/// calling this function again with the same arguments resumes from the
/// manifest and produces shard files **byte-identical** to an uninterrupted
/// run. Shards are written in batch-index order per partition (the same
/// bytes `cfg.ordered` generation produces) regardless of worker count.
pub fn generate_dataset_resumable<P, F>(
    factory: F,
    cfg: &DatasetGenConfig,
    dir: &Path,
    ckpt: &CheckpointConfig,
    kill: Option<Arc<KillSwitch>>,
) -> std::io::Result<TraceDataset>
where
    P: ProbProgram + Send + 'static,
    F: Fn(usize) -> P,
{
    let workers = RuntimeConfig { workers: cfg.workers, ..Default::default() }.resolved_workers();
    let mut pool = SimulatorPool::from_factory(workers, factory);
    let observes = ObserveMap::new();
    generate_resumable_with(
        |runner, sink| runner.run_prior(&mut pool, &observes, cfg.n, cfg.seed, sink),
        BatchRunner::new(RuntimeConfig { workers, stealing: true }),
        cfg,
        dir,
        ckpt,
        kill,
    )
}

/// Checkpointed, restartable [`generate_dataset_mux`]: the same manifest
/// protocol over a multiplexed remote-session pool, composing with the
/// pool's mid-batch session respawn.
pub fn generate_dataset_mux_resumable(
    pool: &mut MuxSimulatorPool,
    cfg: &DatasetGenConfig,
    dir: &Path,
    ckpt: &CheckpointConfig,
    kill: Option<Arc<KillSwitch>>,
) -> std::io::Result<TraceDataset> {
    let workers = if cfg.workers == 0 { pool.len() } else { cfg.workers.min(pool.len()) };
    let observes = ObserveMap::new();
    generate_resumable_with(
        |runner, sink| runner.run_mux_prior(pool, &observes, cfg.n, cfg.seed, sink),
        BatchRunner::new(RuntimeConfig { workers, stealing: true }),
        cfg,
        dir,
        ckpt,
        kill,
    )
}

/// The output directory of one rank under a distributed run's root
/// (`rank_{rank:03}`).
pub fn rank_dir(root: &Path, rank: usize) -> PathBuf {
    root.join(format!("rank_{rank:03}"))
}

/// What one rank of a distributed generation produced.
pub struct RankOutput {
    /// The global indices this rank owned.
    pub slice: Range<usize>,
    /// The rank-private output directory (shards + rank manifest).
    pub dir: PathBuf,
    /// The rank's slice as an opened dataset.
    pub dataset: TraceDataset,
    /// The manifest written for the merge (batch identity, slice, shard
    /// counts, permanently failed indices).
    pub manifest: RankManifest,
    /// Aggregated stats of every pass this call ran (empty if the rank had
    /// already completed and the call only reopened its output).
    pub stats: RunStats,
}

/// Count a finalized slice's shard files per partition (plus trailing
/// repair shards) for the rank manifest.
fn count_shards(shards: &[PathBuf], partitions: usize) -> (Vec<u32>, u32) {
    let mut per_partition = vec![0u32; partitions];
    let mut repair = 0u32;
    for path in shards {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if name.starts_with("repair_") {
            repair += 1;
        } else {
            for (p, count) in per_partition.iter_mut().enumerate() {
                if name.starts_with(&format!("{}_", partition_prefix(p))) {
                    *count += 1;
                    break;
                }
            }
        }
    }
    (per_partition, repair)
}

/// One rank of a distributed dataset generation: the fleet-shaped form of
/// [`generate_dataset_resumable`].
///
/// The global index range `0..cfg.n` is partitioned into `world_size`
/// contiguous slices ([`rank_slice`]); this call generates rank `rank`'s
/// slice through the full checkpoint/resume/healing pipeline into the
/// rank-private directory `root/rank_{rank:03}`, then atomically writes a
/// [`RankManifest`] recording the batch identity, the slice, the shard
/// counts, and any post-healing permanent failures. Once every rank's
/// manifest exists, [`etalumis_data::merge_ranks`] folds the rank outputs
/// into the canonical layout — byte-identical to a single process running
/// `generate_dataset_resumable` over the whole range, because per-trace
/// seeding (`mix_seed(seed, global_index)`) makes record content
/// placement-invariant and the trace-type partitioning rule is shared.
///
/// Crash semantics match the single-process path: a killed rank returns
/// `ErrorKind::Interrupted` and the same call resumes it from its
/// checkpoint manifest. A rank that already completed (its rank manifest
/// exists and matches the request) is reopened idempotently without
/// re-running anything. Unlike the single-process wrapper, permanent
/// failures do not abort the rank — they are surfaced in the manifest so
/// the merge can report fleet-wide holes in one place.
pub fn generate_dataset_distributed<P, F>(
    factory: F,
    cfg: &DatasetGenConfig,
    root: &Path,
    rank: usize,
    world_size: usize,
    ckpt: &CheckpointConfig,
    kill: Option<Arc<KillSwitch>>,
) -> std::io::Result<RankOutput>
where
    P: ProbProgram + Send + 'static,
    F: Fn(usize) -> P,
{
    if world_size == 0 || rank >= world_size {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!("rank {rank} is out of range for world_size {world_size}"),
        ));
    }
    let slice = rank_slice(cfg.n, rank, world_size);
    let dir = rank_dir(root, rank);
    let partitions = cfg.partitions.max(1);

    if let Some(manifest) = RankManifest::load(&dir)? {
        let expected = (
            cfg.n as u64,
            cfg.seed,
            partitions as u32,
            cfg.traces_per_shard as u64,
            cfg.pruned,
            rank as u32,
            world_size as u32,
            slice.start as u64,
            slice.end as u64,
        );
        let actual = (
            manifest.n,
            manifest.seed,
            manifest.partitions,
            manifest.traces_per_shard,
            manifest.pruned,
            manifest.rank,
            manifest.world_size,
            manifest.start,
            manifest.end,
        );
        if expected != actual {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!(
                    "rank dir {} already holds a completed run with a different identity \
                     (manifest: {actual:?}; requested: {expected:?})",
                    dir.display()
                ),
            ));
        }
        // Idempotent completion: reopen the finished output.
        let mut shards = Vec::new();
        for (p, &count) in manifest.shards_per_partition.iter().enumerate() {
            for seq in 0..count as usize {
                shards.push(dir.join(format!("{}_{seq:05}.etlm", partition_prefix(p))));
            }
        }
        for seq in 0..manifest.repair_shards as usize {
            shards.push(dir.join(format!("repair_{seq:05}.etlm")));
        }
        let dataset = TraceDataset::open(shards)?;
        return Ok(RankOutput { slice, dir, dataset, manifest, stats: RunStats::default() });
    }

    let workers = RuntimeConfig { workers: cfg.workers, ..Default::default() }.resolved_workers();
    let mut pool = SimulatorPool::from_factory(workers, factory);
    let observes = ObserveMap::new();
    let (dataset, stats, failed) = generate_slice_resumable_with(
        |runner, sink| runner.run_prior(&mut pool, &observes, cfg.n, cfg.seed, sink),
        BatchRunner::new(RuntimeConfig { workers, stealing: true }),
        cfg,
        slice.clone(),
        &dir,
        ckpt,
        kill,
        true,
    )?;
    let (shards_per_partition, repair_shards) = count_shards(&dataset.shards, partitions);
    let manifest = RankManifest {
        rank: rank as u32,
        world_size: world_size as u32,
        n: cfg.n as u64,
        seed: cfg.seed,
        partitions: partitions as u32,
        traces_per_shard: cfg.traces_per_shard as u64,
        pruned: cfg.pruned,
        start: slice.start as u64,
        end: slice.end as u64,
        shards_per_partition,
        repair_shards,
        failed,
    };
    manifest.save(&dir)?;
    Ok(RankOutput { slice, dir, dataset, manifest, stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use etalumis_simulators::BranchingModel;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("etalumis_rtds_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn parallel_generation_delivers_every_trace() {
        let dir = tmpdir("gen");
        let cfg = DatasetGenConfig {
            n: 70,
            traces_per_shard: 16,
            partitions: 2,
            workers: 3,
            seed: 21,
            ..Default::default()
        };
        let ds = generate_dataset_parallel(|_| BranchingModel::standard(), &cfg, &dir).unwrap();
        assert_eq!(ds.len(), 70);
        assert!(ds.num_trace_types() >= 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn trace_type_multiset_is_worker_count_invariant() {
        let dir1 = tmpdir("w1");
        let dir4 = tmpdir("w4");
        let base = DatasetGenConfig {
            n: 50,
            traces_per_shard: 8,
            partitions: 3,
            seed: 9,
            workers: 1,
            ..Default::default()
        };
        let d1 = generate_dataset_parallel(|_| BranchingModel::standard(), &base, &dir1).unwrap();
        let cfg4 = DatasetGenConfig { workers: 4, ..base };
        let d4 = generate_dataset_parallel(|_| BranchingModel::standard(), &cfg4, &dir4).unwrap();
        assert_eq!(d1.trace_type_counts(), d4.trace_type_counts());
        std::fs::remove_dir_all(&dir1).unwrap();
        std::fs::remove_dir_all(&dir4).unwrap();
    }

    #[test]
    fn mux_generation_matches_local_generation_byte_for_byte() {
        use etalumis_ppx::{InProcMuxEndpoint, MuxEndpoint, SimulatorServer};
        let dir_local = tmpdir("mux_ref");
        let dir_mux = tmpdir("mux_gen");
        let cfg = DatasetGenConfig {
            n: 40,
            traces_per_shard: 8,
            partitions: 2,
            seed: 19,
            workers: 1,
            ordered: true,
            ..Default::default()
        };
        let local =
            generate_dataset_parallel(|_| BranchingModel::standard(), &cfg, &dir_local).unwrap();

        // The same generation driven through 4 remote sessions on 1 reactor
        // worker: remote address construction matches local construction,
        // so even the shard bytes agree.
        let mut pool = crate::MuxSimulatorPool::connect(4, "etalumis-rs", |_| {
            let (ep, sim_side) = InProcMuxEndpoint::pair();
            std::thread::spawn(move || {
                let mut server = SimulatorServer::new("ds", BranchingModel::standard());
                let mut t = sim_side;
                let _ = server.serve(&mut t);
            });
            Ok(Box::new(ep) as Box<dyn MuxEndpoint>)
        })
        .unwrap();
        let remote = generate_dataset_mux(&mut pool, &cfg, &dir_mux).unwrap();

        assert_eq!(local.len(), remote.len());
        assert_eq!(local.shards.len(), remote.shards.len());
        for (a, b) in local.shards.iter().zip(&remote.shards) {
            assert_eq!(a.file_name(), b.file_name());
            assert_eq!(
                std::fs::read(a).unwrap(),
                std::fs::read(b).unwrap(),
                "shard {a:?} differs between local and mux generation"
            );
        }
        std::fs::remove_dir_all(&dir_local).unwrap();
        std::fs::remove_dir_all(&dir_mux).unwrap();
    }

    fn assert_same_shard_bytes(a: &TraceDataset, b: &TraceDataset, label: &str) {
        assert_eq!(a.shards.len(), b.shards.len(), "{label}: shard count");
        for (x, y) in a.shards.iter().zip(&b.shards) {
            assert_eq!(x.file_name(), y.file_name(), "{label}");
            assert_eq!(
                std::fs::read(x).unwrap(),
                std::fs::read(y).unwrap(),
                "{label}: shard {x:?} differs"
            );
        }
    }

    #[test]
    fn resumable_generation_matches_ordered_generation_byte_for_byte() {
        let dir_ord = tmpdir("ck_ord");
        let dir_ck = tmpdir("ck_run");
        let cfg = DatasetGenConfig {
            n: 90,
            traces_per_shard: 16,
            partitions: 3,
            seed: 27,
            workers: 4,
            ordered: true,
            ..Default::default()
        };
        let ordered =
            generate_dataset_parallel(|_| BranchingModel::standard(), &cfg, &dir_ord).unwrap();
        // An uninterrupted checkpointed run writes the same bytes: commit
        // order is batch-index order, exactly like ordered mode.
        let ck = generate_dataset_resumable(
            |_| BranchingModel::standard(),
            &cfg,
            &dir_ck,
            &CheckpointConfig { interval: 10 },
            None,
        )
        .unwrap();
        assert_eq!(ck.len(), 90);
        assert_same_shard_bytes(&ck, &ordered, "checkpointed vs ordered");
        // Nothing transient is left behind: no manifest, no journals.
        assert!(!dir_ck.join(crate::MANIFEST_NAME).exists());
        assert!(std::fs::read_dir(&dir_ck).unwrap().all(|e| e
            .unwrap()
            .path()
            .extension()
            .unwrap()
            == "etlm"));
        std::fs::remove_dir_all(&dir_ord).unwrap();
        std::fs::remove_dir_all(&dir_ck).unwrap();
    }

    #[test]
    fn killed_and_resumed_generation_is_byte_identical_to_uninterrupted() {
        let cfg = DatasetGenConfig {
            n: 80,
            traces_per_shard: 8,
            partitions: 2,
            seed: 55,
            workers: 3,
            ..Default::default()
        };
        let ckpt = CheckpointConfig { interval: 7 };
        let dir_ref = tmpdir("kill_ref");
        let reference =
            generate_dataset_resumable(|_| BranchingModel::standard(), &cfg, &dir_ref, &ckpt, None)
                .unwrap();

        for kill_at in [1usize, 13, 40, 79] {
            let dir = tmpdir(&format!("kill_{kill_at}"));
            let kill = Arc::new(KillSwitch::after(kill_at));
            let err = generate_dataset_resumable(
                |_| BranchingModel::standard(),
                &cfg,
                &dir,
                &ckpt,
                Some(kill),
            )
            .map(|_| ())
            .expect_err("the kill switch must abort the run");
            assert_eq!(err.kind(), std::io::ErrorKind::Interrupted, "kill_at={kill_at}");
            // Resume: same call, no kill switch.
            let resumed =
                generate_dataset_resumable(|_| BranchingModel::standard(), &cfg, &dir, &ckpt, None)
                    .unwrap();
            assert_eq!(resumed.len(), cfg.n, "kill_at={kill_at}");
            assert_same_shard_bytes(&resumed, &reference, &format!("kill_at={kill_at}"));
            assert!(!dir.join(crate::MANIFEST_NAME).exists());
            std::fs::remove_dir_all(&dir).unwrap();
        }
        std::fs::remove_dir_all(&dir_ref).unwrap();
    }

    #[test]
    fn mux_resumable_generation_survives_kill_and_matches_local() {
        use etalumis_ppx::{InProcMuxEndpoint, MuxEndpoint, SimulatorServer};
        let cfg = DatasetGenConfig {
            n: 40,
            traces_per_shard: 8,
            partitions: 2,
            seed: 19,
            workers: 1,
            ..Default::default()
        };
        let ckpt = CheckpointConfig { interval: 5 };
        let dir_ref = tmpdir("muxck_ref");
        let reference =
            generate_dataset_resumable(|_| BranchingModel::standard(), &cfg, &dir_ref, &ckpt, None)
                .unwrap();

        let connect = || {
            crate::MuxSimulatorPool::connect(4, "etalumis-rs", |_| {
                let (ep, sim_side) = InProcMuxEndpoint::pair();
                std::thread::spawn(move || {
                    let mut server = SimulatorServer::new("ds", BranchingModel::standard());
                    let mut t = sim_side;
                    let _ = server.serve(&mut t);
                });
                Ok(Box::new(ep) as Box<dyn MuxEndpoint>)
            })
            .unwrap()
        };
        let dir = tmpdir("muxck_run");
        let mut pool = connect();
        let kill = Arc::new(KillSwitch::after(17));
        let err = generate_dataset_mux_resumable(&mut pool, &cfg, &dir, &ckpt, Some(kill))
            .map(|_| ())
            .expect_err("kill must abort");
        assert_eq!(err.kind(), std::io::ErrorKind::Interrupted);
        // Resume over a *fresh* pool — the old process is "dead".
        let mut pool = connect();
        let resumed = generate_dataset_mux_resumable(&mut pool, &cfg, &dir, &ckpt, None).unwrap();
        assert_eq!(resumed.len(), cfg.n);
        assert_same_shard_bytes(&resumed, &reference, "mux killed+resumed vs local");
        std::fs::remove_dir_all(&dir_ref).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn distributed_ranks_merge_byte_identical_to_single_process() {
        use etalumis_data::{discover_rank_dirs, merge_ranks};
        let cfg = DatasetGenConfig {
            n: 83,
            traces_per_shard: 8,
            partitions: 3,
            workers: 2,
            seed: 41,
            ..Default::default()
        };
        let ckpt = CheckpointConfig { interval: 9 };
        let dir_ref = tmpdir("dist_ref");
        let reference =
            generate_dataset_resumable(|_| BranchingModel::standard(), &cfg, &dir_ref, &ckpt, None)
                .unwrap();

        let root = tmpdir("dist_root");
        let world = 3;
        let mut total = RunStats::default();
        for rank in 0..world {
            let out = generate_dataset_distributed(
                |_| BranchingModel::standard(),
                &cfg,
                &root,
                rank,
                world,
                &ckpt,
                None,
            )
            .unwrap();
            assert_eq!(out.dataset.len(), out.slice.len(), "rank {rank}");
            assert!(out.manifest.failed.is_empty(), "rank {rank}");
            total.absorb(&out.stats);
        }
        assert_eq!(total.total_executed(), cfg.n, "aggregated stats cover the whole batch");

        // A completed rank re-invoked is reopened idempotently, not re-run.
        let again = generate_dataset_distributed(
            |_| BranchingModel::standard(),
            &cfg,
            &root,
            0,
            world,
            &ckpt,
            None,
        )
        .unwrap();
        assert_eq!(again.stats.total_executed(), 0, "no re-execution on a completed rank");
        assert_eq!(again.dataset.len(), again.slice.len());

        let merged =
            merge_ranks(&discover_rank_dirs(&root).unwrap(), &root.join("merged")).unwrap();
        assert_eq!(merged.manifest.records as usize, cfg.n);
        assert_eq!(merged.shards.len(), reference.shards.len());
        for (a, b) in merged.shards.iter().zip(&reference.shards) {
            assert_eq!(a.file_name(), b.file_name());
            assert_eq!(
                std::fs::read(a).unwrap(),
                std::fs::read(b).unwrap(),
                "merged shard {a:?} differs from the single-process run"
            );
        }
        std::fs::remove_dir_all(&dir_ref).unwrap();
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn healing_pass_recovers_below_watermark_failures_on_resume() {
        use etalumis_core::{ProbProgram, RunError, SimCtx};
        use etalumis_distributions::Value;
        use std::sync::atomic::{AtomicBool, Ordering};

        // Fails deterministically *by trace content* while the outage flag
        // is up: the same index fails on every retry (budget exhausts, the
        // failure is recorded permanently), while other indices deliver.
        struct OutageModel {
            inner: BranchingModel,
            outage: Arc<AtomicBool>,
        }
        impl ProbProgram for OutageModel {
            fn run(&mut self, ctx: &mut dyn SimCtx) -> Value {
                self.try_run(ctx).expect("outage")
            }
            fn try_run(&mut self, ctx: &mut dyn SimCtx) -> Result<Value, RunError> {
                let v = self.inner.try_run(ctx)?;
                if self.outage.load(Ordering::SeqCst) {
                    if let Value::Real(x) = v {
                        if x.fract() < 0.25 {
                            return Err(RunError::new("simulator outage"));
                        }
                    }
                }
                Ok(v)
            }
        }

        let cfg = DatasetGenConfig {
            n: 30,
            traces_per_shard: 6,
            partitions: 2,
            workers: 2,
            seed: 12,
            ..Default::default()
        };
        let ckpt = CheckpointConfig { interval: 4 };
        let dir = tmpdir("heal");
        let outage = Arc::new(AtomicBool::new(true));

        // Phase 1: the outage makes a content-selected subset of indices
        // exhaust their retry budget — permanent failures, many of them
        // below the commit watermark by the time the run ends. The run
        // errors but stays resumable (manifest + journals intact).
        let o = outage.clone();
        let err = generate_dataset_resumable(
            move |_| OutageModel { inner: BranchingModel::standard(), outage: o.clone() },
            &cfg,
            &dir,
            &ckpt,
            None,
        )
        .map(|_| ())
        .expect_err("permanent failures must surface");
        assert!(err.to_string().contains("failed permanently"), "unexpected error: {err}");
        let manifest = Checkpoint::load(&dir).unwrap().expect("manifest must survive the failure");
        assert!(!manifest.failed.is_empty(), "the outage must have exhausted retry budgets");
        assert!(
            manifest.failed.iter().any(|&i| i < manifest.watermark),
            "at least one failure must sit below the watermark (failed: {:?}, watermark {})",
            manifest.failed,
            manifest.watermark
        );

        // Phase 2: the outage is over; the resumed run's healing pass
        // re-runs the recorded failures with a fresh budget and patches
        // them in via the repair journal — zero holes.
        outage.store(false, Ordering::SeqCst);
        let o = outage.clone();
        let healed = generate_dataset_resumable(
            move |_| OutageModel { inner: BranchingModel::standard(), outage: o.clone() },
            &cfg,
            &dir,
            &ckpt,
            None,
        )
        .expect("the healing pass must recover every failure");
        assert_eq!(healed.len(), cfg.n, "zero holes after healing");
        assert!(
            healed.shards.iter().any(|p| p
                .file_name()
                .unwrap()
                .to_str()
                .unwrap()
                .starts_with("repair_")),
            "below-watermark records must land in repair shards: {:?}",
            healed.shards
        );
        // Nothing transient left behind: no manifest, no journals.
        assert!(!dir.join(crate::MANIFEST_NAME).exists());
        assert!(!dir.join(crate::REPAIR_JOURNAL_NAME).exists());
        assert!(std::fs::read_dir(&dir)
            .unwrap()
            .all(|e| e.unwrap().path().extension().unwrap() == "etlm"));
        // The healed dataset holds the same record multiset as an
        // outage-free run (committed shard bytes for the *prefix* are
        // unchanged by design; the healed records ride in repair shards).
        let dir_ref = tmpdir("heal_ref");
        let reference =
            generate_dataset_parallel(|_| BranchingModel::standard(), &cfg, &dir_ref).unwrap();
        assert_eq!(healed.trace_type_counts(), reference.trace_type_counts());
        std::fs::remove_dir_all(&dir).unwrap();
        std::fs::remove_dir_all(&dir_ref).unwrap();
    }

    #[test]
    fn ordered_generation_is_byte_identical_across_worker_counts() {
        let dir1 = tmpdir("ord1");
        let dir4 = tmpdir("ord4");
        let base = DatasetGenConfig {
            n: 60,
            traces_per_shard: 16,
            partitions: 2,
            seed: 33,
            workers: 1,
            ordered: true,
            ..Default::default()
        };
        let d1 = generate_dataset_parallel(|_| BranchingModel::standard(), &base, &dir1).unwrap();
        let cfg4 = DatasetGenConfig { workers: 4, ..base };
        let d4 = generate_dataset_parallel(|_| BranchingModel::standard(), &cfg4, &dir4).unwrap();
        assert_eq!(d1.shards.len(), d4.shards.len());
        for (a, b) in d1.shards.iter().zip(&d4.shards) {
            assert_eq!(a.file_name(), b.file_name());
            assert_eq!(
                std::fs::read(a).unwrap(),
                std::fs::read(b).unwrap(),
                "shard {a:?} differs between worker counts"
            );
        }
        std::fs::remove_dir_all(&dir1).unwrap();
        std::fs::remove_dir_all(&dir4).unwrap();
    }
}
