//! The batch runner: N traces, any proposer, streamed to sinks.
//!
//! One [`BatchRunner::run`] call is the runtime's unit of work: execute
//! `n` independent traces of the pooled programs under a per-worker
//! proposer, scheduling trace indices over the work-stealing queues and
//! streaming each completed [`Trace`] to a [`TraceSink`]. Every trace `i`
//! runs with an RNG seeded purely from `(seed, i)`, so the batch's content
//! is identical for any worker count, stealing decision, or finish order —
//! only the wall-clock changes. Serial execution is literally the 1-worker
//! degenerate case.

use crate::pool::SimulatorPool;
use crate::scheduler::TaskQueues;
use crate::sink::TraceSink;
use etalumis_core::{Executor, ObserveMap, PriorProposer, Proposer};
use etalumis_telemetry::Telemetry;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Splitmix64: decorrelate per-trace seeds from a batch seed and an index.
pub fn mix_seed(seed: u64, index: usize) -> u64 {
    let mut z = seed.wrapping_add((index as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Builds the per-worker proposers a batch runs under.
///
/// Workers need one proposer each (proposers are stateful within a trace —
/// e.g. the IC LSTM); the factory is consulted once per worker at batch
/// start.
pub trait ProposerFactory: Sync {
    /// Proposer for `worker`.
    fn make_proposer(&self, worker: usize) -> Box<dyn Proposer + Send>;
}

/// Every `Fn(usize) -> Box<dyn Proposer + Send> + Sync` is a factory.
impl<F> ProposerFactory for F
where
    F: Fn(usize) -> Box<dyn Proposer + Send> + Sync,
{
    fn make_proposer(&self, worker: usize) -> Box<dyn Proposer + Send> {
        self(worker)
    }
}

/// Factory of [`PriorProposer`]s — forward simulation / trace generation.
pub struct PriorProposerFactory;

impl ProposerFactory for PriorProposerFactory {
    fn make_proposer(&self, _worker: usize) -> Box<dyn Proposer + Send> {
        Box::new(PriorProposer)
    }
}

/// Scheduling knobs for a batch run.
#[derive(Clone, Copy, Debug)]
pub struct RuntimeConfig {
    /// Worker threads (and pooled program instances). 0 means "all cores".
    pub workers: usize,
    /// Work stealing on (the default). Off reproduces static partitioning —
    /// kept as a measurable baseline, not a mode anyone should want.
    pub stealing: bool,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        Self { workers: 0, stealing: true }
    }
}

impl RuntimeConfig {
    /// Resolve `workers = 0` to the machine's available parallelism.
    pub fn resolved_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        }
    }
}

/// What a batch does when a trace execution fails.
///
/// Per-trace seeding makes a re-execution of trace `i` produce the exact
/// same content on any worker or session, so retrying a trace whose
/// simulator died is always safe — the knobs here only bound how much dying
/// hardware the batch will tolerate before recording a permanent failure.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Times one trace index may be requeued after a failed execution
    /// before it is recorded in [`RunStats::failures`].
    pub max_trace_retries: u32,
    /// Consecutive failures after which a blocking worker retires (its
    /// program is considered dead; remaining work is stolen or drained).
    /// Mux workers retire per-session via the pool's reconnect policy
    /// instead.
    pub worker_failure_threshold: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self { max_trace_retries: 3, worker_failure_threshold: 3 }
    }
}

/// Cooperative abort signal for a batch run, with an optional countdown.
///
/// Workers stop pulling work the moment the switch fires and return without
/// flushing or finalizing anything — from the filesystem's point of view the
/// run simply stops mid-flight, which is exactly the state a `SIGKILL`ed
/// process leaves behind. Tests and the `resume_dataset` example use the
/// countdown form ([`KillSwitch::after`]) to die at a chosen trace index and
/// then prove the checkpoint manifest restores the run bit-identically.
#[derive(Debug, Default)]
pub struct KillSwitch {
    killed: AtomicBool,
    /// Deliveries remaining before the switch auto-fires (< 0: never).
    countdown: AtomicI64,
}

impl KillSwitch {
    /// A switch that only fires when [`KillSwitch::kill`] is called.
    pub fn new() -> Self {
        Self { killed: AtomicBool::new(false), countdown: AtomicI64::new(-1) }
    }

    /// A switch that fires automatically after `n` trace deliveries
    /// (`n = 0` fires immediately).
    pub fn after(n: usize) -> Self {
        Self { killed: AtomicBool::new(n == 0), countdown: AtomicI64::new(n as i64) }
    }

    /// Fire the switch.
    pub fn kill(&self) {
        self.killed.store(true, Ordering::SeqCst);
    }

    /// Has the switch fired?
    pub fn killed(&self) -> bool {
        self.killed.load(Ordering::SeqCst)
    }

    /// Count one delivery against the countdown.
    pub(crate) fn tick(&self) {
        if self.countdown.fetch_sub(1, Ordering::SeqCst) == 1 {
            self.kill();
        }
    }
}

/// Shared per-index retry budget: how many times each trace has been
/// requeued after a failure. Lives outside the workers because stealing can
/// move a retried index anywhere.
pub(crate) struct RetryTable {
    counts: Mutex<HashMap<usize, u32>>,
    max: u32,
}

impl RetryTable {
    pub(crate) fn new(max: u32) -> Self {
        Self { counts: Mutex::new(HashMap::new()), max }
    }

    /// Consume one retry for `index`; `true` if the index may run again.
    pub(crate) fn try_consume(&self, index: usize) -> bool {
        let mut counts = self.counts.lock();
        let c = counts.entry(index).or_insert(0);
        if *c < self.max {
            *c += 1;
            true
        } else {
            false
        }
    }
}

/// What one worker did during a batch.
#[derive(Clone, Copy, Debug, Default)]
pub struct WorkerReport {
    /// Traces this worker executed.
    pub executed: usize,
    /// Time spent inside simulator executions.
    pub busy: Duration,
}

/// Outcome of one batch run.
#[derive(Clone, Debug, Default)]
pub struct RunStats {
    /// Wall-clock of the whole batch.
    pub elapsed: Duration,
    /// Per-worker execution counts and busy times.
    pub per_worker: Vec<WorkerReport>,
    /// Tasks that finished on a worker other than the one they were
    /// initially assigned to.
    pub steals: u64,
    /// Traces that failed (remote transport/protocol errors), as
    /// `(batch index, error)` sorted by index. Failed traces are recorded
    /// and skipped — never delivered to the sink, never aborting the batch.
    pub failures: Vec<(usize, String)>,
    /// Trace executions requeued after a failure (each eventually delivered
    /// by a healthy worker/session or recorded in `failures`).
    pub retries: u64,
    /// Mux sessions re-established mid-batch (endpoint re-made, handshake
    /// re-driven) after their connection died. Always 0 on the blocking
    /// path.
    pub respawns: u64,
    /// True when the batch was aborted by a [`KillSwitch`] before every
    /// index was delivered or failed.
    pub killed: bool,
}

impl RunStats {
    /// Total traces executed across workers.
    pub fn total_executed(&self) -> usize {
        self.per_worker.iter().map(|w| w.executed).sum()
    }

    /// Load imbalance: `max(busy) / mean(busy) − 1` (0 = perfectly even).
    pub fn imbalance(&self) -> f64 {
        let busies: Vec<f64> = self.per_worker.iter().map(|w| w.busy.as_secs_f64()).collect();
        if busies.is_empty() {
            return 0.0;
        }
        let max = busies.iter().cloned().fold(0.0f64, f64::max); // etalumis: allow(float-reduction, reason = "f64 load-imbalance stat; telemetry only, fixed sequential order")
        let mean = busies.iter().sum::<f64>() / busies.len() as f64; // etalumis: allow(float-reduction, reason = "f64 load-imbalance stat; telemetry only, fixed sequential order")
        if mean <= 0.0 {
            0.0
        } else {
            max / mean - 1.0
        }
    }

    /// Traces per wall-clock second.
    pub fn throughput(&self) -> f64 {
        let s = self.elapsed.as_secs_f64();
        if s <= 0.0 {
            0.0
        } else {
            self.total_executed() as f64 / s
        }
    }

    /// Fold another run's statistics into this one: counters sum, worker
    /// reports append, failure lists merge (sorted by index, deduplicated),
    /// `killed` ORs, and `elapsed` sums — total compute time across the
    /// folded runs, not fleet wall-clock. This is how multi-pass runs (a
    /// resumed batch's main pass plus its healing pass) and multi-rank
    /// distributed generation report one aggregate [`RunStats`].
    pub fn absorb(&mut self, other: &RunStats) {
        self.elapsed += other.elapsed;
        self.per_worker.extend(other.per_worker.iter().copied());
        self.steals += other.steals;
        self.failures.extend(other.failures.iter().cloned());
        self.failures.sort_by_key(|&(i, _)| i);
        self.failures.dedup_by_key(|&mut (i, _)| i);
        self.retries += other.retries;
        self.respawns += other.respawns;
        self.killed |= other.killed;
    }

    /// [`RunStats::absorb`] folded over any number of runs (per-rank stats
    /// of a distributed generation, sequential passes of a resumed one).
    pub fn aggregate<'a>(runs: impl IntoIterator<Item = &'a RunStats>) -> RunStats {
        let mut total = RunStats::default();
        for r in runs {
            total.absorb(r);
        }
        total
    }

    /// Export this run's statistics into the telemetry snapshot: one
    /// `runtime.*` counter per field (so [`RunStats::absorb`]-style merges
    /// fall out of counter summation), a `runtime.imbalance` gauge, and a
    /// per-worker `runtime.worker_busy` span + `runtime.worker_executed`
    /// gauge attributed via [`Telemetry::worker_scope`]. Event counts are
    /// deterministic (one bundle per recorded run); steal/retry *values*
    /// are meters of the actual schedule.
    pub fn record_to(&self, tel: &Telemetry) {
        if !tel.is_enabled() {
            return;
        }
        tel.count("runtime.executed", self.total_executed() as u64);
        tel.count("runtime.steals", self.steals);
        tel.count("runtime.failures", self.failures.len() as u64);
        tel.count("runtime.retries", self.retries);
        tel.count("runtime.respawns", self.respawns);
        tel.count("runtime.killed", self.killed as u64);
        tel.gauge("runtime.imbalance", self.imbalance());
        tel.gauge("runtime.throughput", self.throughput());
        for (w, r) in self.per_worker.iter().enumerate() {
            let _scope = tel.worker_scope(w as u32);
            tel.span_record("runtime.worker_busy", r.busy);
            tel.gauge("runtime.worker_executed", r.executed as f64);
        }
    }
}

/// Executes batches of traces over a [`SimulatorPool`].
#[derive(Clone)]
pub struct BatchRunner {
    config: RuntimeConfig,
    policy: RetryPolicy,
    kill: Option<Arc<KillSwitch>>,
    /// Explicit task list (a resumed batch's remaining indices). `None`
    /// means the full range `0..n`, block-partitioned.
    tasks: Option<Vec<usize>>,
    tel: Telemetry,
}

impl BatchRunner {
    /// Runner with the given scheduling configuration.
    pub fn new(config: RuntimeConfig) -> Self {
        Self {
            config,
            policy: RetryPolicy::default(),
            kill: None,
            tasks: None,
            tel: Telemetry::disabled(),
        }
    }

    /// Runner with default scheduling (all cores, stealing on).
    pub fn default_runner() -> Self {
        Self::new(RuntimeConfig::default())
    }

    /// The runner's scheduling configuration.
    pub fn config(&self) -> &RuntimeConfig {
        &self.config
    }

    /// Override the failure [`RetryPolicy`].
    pub fn with_retry_policy(mut self, policy: RetryPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The runner's failure policy.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.policy
    }

    /// Attach a [`KillSwitch`]; when it fires, workers abandon the batch
    /// immediately (simulated process death for checkpoint tests).
    pub fn with_kill_switch(mut self, kill: Arc<KillSwitch>) -> Self {
        self.kill = Some(kill);
        self
    }

    /// Attach a [`Telemetry`] handle. Workers then record one
    /// `runtime.task` span per trace execution (worker-attributed, nested
    /// steals counted as `runtime.steal`) and the run records its
    /// [`RunStats`] into the snapshot. Instrumentation only observes — the
    /// batch's content stays bit-identical to an uninstrumented run.
    pub fn with_telemetry(mut self, tel: Telemetry) -> Self {
        self.tel = tel;
        self
    }

    /// The runner's telemetry handle (disabled unless
    /// [`BatchRunner::with_telemetry`] was used).
    pub fn telemetry(&self) -> &Telemetry {
        &self.tel
    }

    /// Run only these trace indices of the batch (the remaining work of a
    /// checkpointed run — see [`crate::checkpoint::Checkpoint`]). Indices
    /// are interleaved round-robin across workers so the contiguous
    /// completed prefix — what a checkpoint can commit — advances evenly.
    /// Per-trace seeding is unchanged: index `i` still runs under
    /// `mix_seed(seed, i)`, so a partial batch's content matches the same
    /// indices of a full run exactly.
    pub fn with_tasks(mut self, tasks: Vec<usize>) -> Self {
        self.tasks = Some(tasks);
        self
    }

    /// Fill `queues` with this run's work: the explicit task list if one was
    /// set (interleaved), the full block-partitioned range otherwise.
    pub(crate) fn fill_queues(&self, queues: &TaskQueues, n: usize) {
        match &self.tasks {
            Some(tasks) => queues.fill_interleaved(tasks.iter().copied()),
            None => queues.fill_blocks(n),
        }
    }

    pub(crate) fn killed(&self) -> bool {
        self.kill.as_ref().is_some_and(|k| k.killed())
    }

    pub(crate) fn kill_handle(&self) -> Option<Arc<KillSwitch>> {
        self.kill.clone()
    }

    /// Execute `n` traces under per-worker proposers from `proposers`,
    /// conditioning on `observes`, streaming completions into `sink`.
    ///
    /// The worker count is the pool size (each worker owns one pooled
    /// program for the whole batch); a non-zero `RuntimeConfig.workers`
    /// must agree with it (checked). Trace `i` is a pure function of
    /// `(program, proposer, observes, mix_seed(seed, i))`.
    pub fn run(
        &self,
        pool: &mut SimulatorPool,
        proposers: &dyn ProposerFactory,
        observes: &ObserveMap,
        n: usize,
        seed: u64,
        sink: &dyn TraceSink,
    ) -> RunStats {
        let workers = pool.len();
        assert!(
            self.config.workers == 0 || self.config.workers == workers,
            "RuntimeConfig.workers ({}) disagrees with the pool size ({}); \
             the pool defines the worker count (workers = 0 defers to it)",
            self.config.workers,
            workers,
        );
        let stealing = self.config.stealing;
        let queues = TaskQueues::new(workers);
        self.fill_queues(&queues, n);
        let retries = RetryTable::new(self.policy.max_trace_retries);
        let start = Instant::now(); // etalumis: allow(determinism, reason = "wall-clock report timing; telemetry only, never reaches trace bytes")
        let mut per_worker = vec![WorkerReport::default(); workers];
        let mut failures: Vec<(usize, String)> = Vec::new();
        let mut total_retries = 0u64;
        std::thread::scope(|s| {
            let handles: Vec<_> = pool
                .programs_mut()
                .iter_mut()
                .enumerate()
                .map(|(w, program)| {
                    let queues = &queues;
                    let retries = &retries;
                    let kill = self.kill.as_deref();
                    let threshold = self.policy.worker_failure_threshold;
                    let tel = self.tel.clone();
                    s.spawn(move || {
                        let _tel_scope = tel.worker_scope(w as u32);
                        let mut proposer = proposers.make_proposer(w);
                        let mut report = WorkerReport::default();
                        let mut failed: Vec<(usize, String)> = Vec::new();
                        let mut requeued = 0u64;
                        let mut consecutive = 0u32;
                        while !kill.is_some_and(|k| k.killed()) {
                            let Some((i, stolen)) = queues.pop_traced(w, stealing) else { break };
                            if stolen {
                                tel.count("runtime.steal", 1);
                            }
                            let task_span = tel.span("runtime.task");
                            let t0 = Instant::now(); // etalumis: allow(determinism, reason = "wall-clock busy accounting; telemetry only")
                            let result = Executor::try_execute_seeded(
                                program,
                                proposer.as_mut(),
                                observes,
                                mix_seed(seed, i),
                            );
                            drop(task_span);
                            report.busy += t0.elapsed();
                            match result {
                                Ok(trace) => {
                                    consecutive = 0;
                                    report.executed += 1;
                                    sink.accept(i, trace);
                                    if let Some(k) = kill {
                                        k.tick();
                                    }
                                }
                                Err(e) => {
                                    // One failed execution must not abort
                                    // the batch: requeue the index (another
                                    // worker's healthy simulator can rerun
                                    // it bit-identically) while its budget
                                    // lasts, then record it.
                                    if retries.try_consume(i) {
                                        queues.push((w + 1) % workers, i);
                                        requeued += 1;
                                    } else {
                                        sink.reject(i, &e.message);
                                        failed.push((i, e.message));
                                    }
                                    // A program that keeps failing is dead
                                    // (poisoned remote session): retire the
                                    // worker, let the others absorb its
                                    // share.
                                    consecutive += 1;
                                    if consecutive >= threshold {
                                        break;
                                    }
                                }
                            }
                        }
                        (report, failed, requeued)
                    })
                })
                .collect();
            for (w, h) in handles.into_iter().enumerate() {
                let (report, failed, requeued) = h.join().expect("runtime worker panicked"); // etalumis: allow(panic-freedom, reason = "join Err only repropagates a worker panic")
                per_worker[w] = report;
                failures.extend(failed);
                total_retries += requeued;
            }
        });
        let killed = self.killed();
        if !killed {
            // Tasks stranded by retired workers (with stealing off nobody
            // else could take them): account for every index.
            for i in queues.drain_remaining() {
                sink.reject(i, "not executed: worker retired after repeated failures");
                failures
                    .push((i, "not executed: worker retired after repeated failures".to_string()));
            }
        }
        failures.sort_by_key(|(i, _)| *i);
        let stats = RunStats {
            elapsed: start.elapsed(),
            per_worker,
            steals: queues.steals(),
            failures,
            retries: total_retries,
            respawns: 0,
            killed,
        };
        stats.record_to(&self.tel);
        stats
    }

    /// [`BatchRunner::run`] with prior proposals — plain trace generation.
    pub fn run_prior(
        &self,
        pool: &mut SimulatorPool,
        observes: &ObserveMap,
        n: usize,
        seed: u64,
        sink: &dyn TraceSink,
    ) -> RunStats {
        self.run(pool, &PriorProposerFactory, observes, n, seed, sink)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::CollectSink;
    use etalumis_core::{FnProgram, SimCtx, SimCtxExt};
    use etalumis_distributions::{Distribution, Value};
    use etalumis_simulators::BranchingModel;

    fn branching_pool(workers: usize) -> SimulatorPool {
        SimulatorPool::from_factory(workers, |_| BranchingModel::standard())
    }

    fn run_batch(workers: usize, n: usize, seed: u64) -> Vec<Trace> {
        let mut pool = branching_pool(workers);
        let runner = BatchRunner::new(RuntimeConfig { workers, stealing: true });
        let sink = CollectSink::new(n);
        let observes = ObserveMap::new();
        let stats = runner.run_prior(&mut pool, &observes, n, seed, &sink);
        assert_eq!(stats.total_executed(), n);
        sink.into_traces()
    }

    use etalumis_core::Trace;

    #[test]
    fn one_worker_batches_are_deterministic() {
        let a = run_batch(1, 24, 42);
        let b = run_batch(1, 24, 42);
        assert_eq!(a.len(), 24);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.result, y.result);
            assert_eq!(x.log_joint(), y.log_joint());
        }
    }

    #[test]
    fn batch_content_is_independent_of_worker_count() {
        let serial = run_batch(1, 40, 7);
        for workers in [2usize, 4] {
            let parallel = run_batch(workers, 40, 7);
            for (s, p) in serial.iter().zip(&parallel) {
                assert_eq!(s.result, p.result, "trace diverged at {workers} workers");
                assert_eq!(s.log_joint(), p.log_joint());
            }
        }
    }

    #[test]
    fn all_traces_delivered_under_many_workers() {
        let n = 103;
        let mut pool = branching_pool(5);
        let runner = BatchRunner::new(RuntimeConfig { workers: 5, stealing: true });
        let sink = CollectSink::new(n);
        let observes = ObserveMap::new();
        let stats = runner.run_prior(&mut pool, &observes, n, 3, &sink);
        assert_eq!(stats.total_executed(), n);
        assert_eq!(stats.per_worker.len(), 5);
        // into_results reports missing indices — delivery check.
        let (delivered, missing) = sink.into_results();
        assert_eq!(delivered.len(), n);
        assert!(missing.is_empty());
    }

    #[test]
    fn skewed_workload_triggers_stealing() {
        // All heavy work lands in worker 0's initial block: indices 0..n/4
        // spin, the rest are trivial. With block filling, workers 1..3 drain
        // their trivial blocks and must steal from worker 0 to finish.
        let n = 64usize;
        let heavy = n / 4; // exactly worker 0's block
        let model = move |_w: usize| {
            FnProgram::new("skew", move |ctx: &mut dyn SimCtx| {
                let x = ctx.sample_f64(&Distribution::Uniform { low: 0.0, high: 1.0 }, "x");
                Value::Real(x)
            })
        };
        let mut pool = SimulatorPool::from_factory(4, model);
        let runner = BatchRunner::new(RuntimeConfig { workers: 4, stealing: true });
        let observes = ObserveMap::new();

        // Sink that burns time for heavy indices, simulating slow simulator
        // executions without depending on model internals.
        struct SlowSink {
            heavy_below: usize,
        }
        impl TraceSink for SlowSink {
            fn accept(&self, index: usize, _trace: Trace) {
                if index < self.heavy_below {
                    std::thread::sleep(std::time::Duration::from_millis(4));
                }
            }
        }
        let sink = SlowSink { heavy_below: heavy };
        let stats = runner.run_prior(&mut pool, &observes, n, 11, &sink);
        assert_eq!(stats.total_executed(), n);
        assert!(stats.steals > 0, "skewed workload should force steals, got {:?}", stats);
    }

    #[test]
    fn failed_traces_are_recorded_not_fatal() {
        use etalumis_core::{ProbProgram, RunError};
        // A "remote" program whose transport is dead: every run fails.
        struct DeadTransportProgram;
        impl ProbProgram for DeadTransportProgram {
            fn run(&mut self, ctx: &mut dyn SimCtx) -> Value {
                self.try_run(ctx).expect("dead transport")
            }
            fn try_run(&mut self, _ctx: &mut dyn SimCtx) -> Result<Value, RunError> {
                Err(RunError::new("peer disconnected"))
            }
        }
        let mut pool = SimulatorPool::from_programs(vec![Box::new(DeadTransportProgram)]);
        let runner = BatchRunner::new(RuntimeConfig { workers: 1, stealing: true });
        let sink = crate::sink::CountingSink::default();
        let observes = ObserveMap::new();
        let stats = runner.run_prior(&mut pool, &observes, 12, 4, &sink);
        // The batch completed; nothing was delivered, every index is
        // accounted for: the sole worker retried its dead program a few
        // times, retired, and the remaining share was drained as failures.
        assert_eq!(stats.total_executed(), 0);
        assert_eq!(sink.count(), 0);
        assert_eq!(stats.failures.len(), 12);
        assert_eq!(stats.failures[0].0, 0);
        assert!(stats.retries > 0, "a failed trace must be retried before giving up: {stats:?}");
        assert!(!stats.killed);
    }

    #[test]
    fn transient_failures_are_retried_on_healthy_workers() {
        use etalumis_core::{ProbProgram, RunError};
        use std::sync::atomic::{AtomicUsize, Ordering};
        // Worker 0's program fails its first two executions then dies for
        // good; worker 1 is healthy. Every trace must still be delivered,
        // through retries, with zero recorded failures.
        static FAILS: AtomicUsize = AtomicUsize::new(0);
        struct FlakyProgram {
            healthy: Option<BranchingModel>,
        }
        impl ProbProgram for FlakyProgram {
            fn run(&mut self, ctx: &mut dyn SimCtx) -> Value {
                self.try_run(ctx).expect("flaky")
            }
            fn try_run(&mut self, ctx: &mut dyn SimCtx) -> Result<Value, RunError> {
                match &mut self.healthy {
                    Some(m) => m.try_run(ctx),
                    None => {
                        FAILS.fetch_add(1, Ordering::SeqCst);
                        Err(RunError::new("simulator crashed"))
                    }
                }
            }
        }
        FAILS.store(0, Ordering::SeqCst);
        let mut pool = SimulatorPool::from_programs(vec![
            Box::new(FlakyProgram { healthy: None }),
            Box::new(FlakyProgram { healthy: Some(BranchingModel::standard()) }),
        ]);
        let n = 16;
        let runner = BatchRunner::new(RuntimeConfig { workers: 2, stealing: true });
        let sink = CollectSink::new(n);
        let observes = ObserveMap::new();
        let stats = runner.run_prior(&mut pool, &observes, n, 8, &sink);
        assert_eq!(stats.total_executed(), n, "stats: {stats:?}");
        assert!(stats.failures.is_empty(), "retries must absorb the dead worker: {stats:?}");
        assert!(stats.retries > 0);
        assert_eq!(sink.into_traces().len(), n);
        assert!(FAILS.load(Ordering::SeqCst) > 0, "the dead worker must have been exercised");
    }

    #[test]
    fn static_mode_never_steals() {
        let mut pool = branching_pool(3);
        let runner = BatchRunner::new(RuntimeConfig { workers: 3, stealing: false });
        let sink = CollectSink::new(30);
        let observes = ObserveMap::new();
        let stats = runner.run_prior(&mut pool, &observes, 30, 5, &sink);
        assert_eq!(stats.steals, 0);
        assert_eq!(stats.total_executed(), 30);
        // Static blocks: every worker executed exactly its block.
        assert!(stats.per_worker.iter().all(|w| w.executed == 10));
    }
}
