//! # etalumis-runtime
//!
//! The parallel trace-generation runtime: the layer between the single-trace
//! executor of `etalumis-core` and every consumer that needs traces at
//! volume (importance sampling, dataset generation, benchmarking).
//!
//! The paper's throughput story (§4.4, Figure 4) is dynamic load balancing:
//! execution traces vary enormously in cost — rejection loops, 38-way decay
//! branching — so a static split of "n traces over k workers" leaves most
//! workers idle while the unlucky one finishes. This crate supplies the
//! machinery the paper's controller/simulator split implies:
//!
//! * [`scheduler`] — per-worker deques with work stealing over a fixed
//!   batch of trace indices,
//! * [`pool`] — [`SimulatorPool`]: one [`ProbProgram`] instance per worker,
//!   local models or PPX [`RemoteModel`] connections alike, so fleets of
//!   out-of-process simulators are driven concurrently,
//! * [`batch`] — [`BatchRunner`]: execute N traces under any proposer
//!   (prior, IC, replay) with per-trace seeding, making batch content a
//!   pure function of the seed — identical for any worker count,
//! * [`sink`] — streaming [`TraceSink`]s, including the
//!   [`ShardedTraceSink`] that partitions completions across
//!   `etalumis-data` shard writers by trace-type hash,
//! * [`oversub`] — oversubscribed remote execution: a [`MuxSimulatorPool`]
//!   of K PPX sessions driven by M ≤ K reactor workers, so one thread hides
//!   the latency of many slow simulators while batch content stays
//!   bit-identical to the blocking path,
//! * [`dataset`] — parallel dataset generation wired through all of the
//!   above (local pools or multiplexed remote pools),
//! * [`stream`] — the streaming generate→train seam: an ordered
//!   [`StreamSink`] feeding a bounded `etalumis-data` trace channel, plus
//!   the checkpoint-teed [`stream_dataset_resumable`] whose shards stay
//!   byte-identical to the batch pipeline while training consumes the
//!   live stream.
//!
//! [`RemoteModel`]: etalumis_ppx::RemoteModel
//! [`ProbProgram`]: etalumis_core::ProbProgram

pub mod batch;
pub mod checkpoint;
pub mod dataset;
pub mod oversub;
pub mod pool;
pub mod scheduler;
pub mod sink;
pub mod stream;

pub use batch::{
    mix_seed, BatchRunner, KillSwitch, PriorProposerFactory, ProposerFactory, RetryPolicy,
    RunStats, RuntimeConfig, WorkerReport,
};
pub use checkpoint::{
    Checkpoint, CheckpointConfig, CheckpointSink, RepairSink, ShardLayout, MANIFEST_NAME,
    REPAIR_JOURNAL_NAME,
};
pub use dataset::{
    generate_dataset_distributed, generate_dataset_mux, generate_dataset_mux_resumable,
    generate_dataset_parallel, generate_dataset_resumable, rank_dir, DatasetGenConfig, RankOutput,
};
pub use etalumis_data::{merge_ranks, rank_slice};
pub use oversub::{MuxSimulatorPool, ReconnectPolicy};
pub use pool::SimulatorPool;
pub use scheduler::TaskQueues;
pub use sink::{CollectSink, CountingSink, ShardedTraceSink, TraceSink};
pub use stream::{
    stream_dataset_mux_resumable, stream_dataset_mux_resumable_traced, stream_dataset_resumable,
    stream_dataset_resumable_traced, stream_prior_traces, StreamSink, TeeSink,
};

#[cfg(test)]
mod ppx_pool_tests {
    use super::*;
    use etalumis_core::{FnProgram, ObserveMap, SimCtx, SimCtxExt};
    use etalumis_distributions::{Distribution, Value};
    use etalumis_ppx::{InProcTransport, RemoteModel, SimulatorServer};

    fn spawn_remote() -> InProcTransport {
        let (controller_side, sim_side) = InProcTransport::pair();
        std::thread::spawn(move || {
            let program = FnProgram::new("pool_gauss", |ctx: &mut dyn SimCtx| {
                let mu = ctx.sample_f64(&Distribution::Normal { mean: 0.0, std: 1.0 }, "mu");
                ctx.observe(&Distribution::Normal { mean: mu, std: 0.5 }, "y");
                Value::Real(mu)
            });
            let mut server = SimulatorServer::new("rt", program);
            let mut t = sim_side;
            let _ = server.serve(&mut t);
        });
        controller_side
    }

    #[test]
    fn pooled_remote_models_run_in_parallel_and_match_local() {
        // 3 out-of-process (well, out-of-thread) simulators behind PPX.
        let mut remote_pool =
            SimulatorPool::connect_ppx(3, |_w| RemoteModel::connect(spawn_remote(), "etalumis-rs"))
                .unwrap();
        let runner = BatchRunner::new(RuntimeConfig { workers: 3, stealing: true });
        let observes = ObserveMap::new();
        let n = 30;
        let sink = CollectSink::new(n);
        let stats = runner.run_prior(&mut remote_pool, &observes, n, 77, &sink);
        assert_eq!(stats.total_executed(), n);
        let remote_traces = sink.into_traces();

        // The same batch over local instances of the same model: values on
        // the controlled sites must agree exactly (controller owns the RNG).
        let mut local_pool = SimulatorPool::from_factory(1, |_| {
            FnProgram::new("pool_gauss", |ctx: &mut dyn SimCtx| {
                let mu = ctx.sample_f64(&Distribution::Normal { mean: 0.0, std: 1.0 }, "mu");
                ctx.observe(&Distribution::Normal { mean: mu, std: 0.5 }, "y");
                Value::Real(mu)
            })
        });
        let sink = CollectSink::new(n);
        // workers = 0 defers to the pool size (1 here).
        BatchRunner::default_runner().run_prior(&mut local_pool, &observes, n, 77, &sink);
        let local_traces = sink.into_traces();
        for (r, l) in remote_traces.iter().zip(&local_traces) {
            assert_eq!(r.value_by_name("mu"), l.value_by_name("mu"));
        }
    }
}
