//! Trace sinks: where completed traces stream as workers finish them.
//!
//! The batch runner pushes each trace to a sink the moment its execution
//! returns — there is no end-of-batch collection barrier, which is what lets
//! dataset generation overlap simulation with serialization. Sinks are
//! shared across workers and synchronize internally; the sharded sink keeps
//! contention low by locking only the one partition a trace hashes to.

use etalumis_core::Trace;
use etalumis_data::{RollingShardWriter, TraceRecord};
use parking_lot::Mutex;
use std::io;
use std::path::{Path, PathBuf};

/// Receives completed traces from worker threads.
///
/// `index` is the trace's position in the batch (`0..n`), so order-sensitive
/// consumers can reconstruct deterministic output regardless of which worker
/// finished first.
pub trait TraceSink: Sync {
    /// Accept one completed trace. Called from worker threads.
    fn accept(&self, index: usize, trace: Trace);

    /// Told that `index` permanently failed (its retry budget ran out).
    /// Checkpointing sinks use this to pass their commit watermark over the
    /// hole; most sinks don't care — the failure is already recorded in
    /// [`crate::RunStats::failures`].
    fn reject(&self, index: usize, error: &str) {
        let _ = (index, error);
    }
}

/// Collects the whole batch in memory, in batch order.
pub struct CollectSink {
    slots: Mutex<Vec<Option<Trace>>>,
}

impl CollectSink {
    /// Sink for a batch of `n` traces.
    pub fn new(n: usize) -> Self {
        Self { slots: Mutex::new(vec![None; n]) }
    }

    /// The delivered traces in batch order.
    ///
    /// Indices that were never delivered (failed traces — see
    /// [`crate::RunStats::failures`]) are skipped, so a batch with failures
    /// yields its partial results instead of panicking; use
    /// [`CollectSink::into_results`] when the caller needs the holes.
    pub fn into_traces(self) -> Vec<Trace> {
        self.slots.into_inner().into_iter().flatten().collect()
    }

    /// The delivered `(index, trace)` pairs in batch order, plus the list
    /// of indices that were never delivered.
    pub fn into_results(self) -> (Vec<(usize, Trace)>, Vec<usize>) {
        let mut delivered = Vec::new();
        let mut missing = Vec::new();
        for (i, t) in self.slots.into_inner().into_iter().enumerate() {
            match t {
                Some(t) => delivered.push((i, t)),
                None => missing.push(i),
            }
        }
        (delivered, missing)
    }
}

impl TraceSink for CollectSink {
    fn accept(&self, index: usize, trace: Trace) {
        self.slots.lock()[index] = Some(trace);
    }
}

/// Counts deliveries without keeping the traces (throughput measurement).
#[derive(Default)]
pub struct CountingSink {
    count: std::sync::atomic::AtomicUsize,
}

impl CountingSink {
    /// Traces delivered so far.
    pub fn count(&self) -> usize {
        self.count.load(std::sync::atomic::Ordering::Relaxed)
    }
}

impl TraceSink for CountingSink {
    fn accept(&self, _index: usize, _trace: Trace) {
        self.count.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }
}

/// Streams traces into `etalumis-data` shard files, partitioned by
/// trace-type hash.
///
/// Partitioning by trace type does two jobs at once: workers contend only on
/// the partition lock their trace hashes to, and each partition's shards are
/// type-homogeneous — the grouping §4.4.3's offline sort otherwise has to
/// create before training can drop sub-minibatching.
pub struct ShardedTraceSink {
    partitions: Vec<Mutex<RollingShardWriter>>,
    pruned: bool,
    /// First I/O error raised by any worker; surfaced at `finish`.
    error: Mutex<Option<io::Error>>,
}

impl ShardedTraceSink {
    /// The partition a trace type hashes to — delegates to the canonical
    /// rule in `etalumis_data` ([`etalumis_data::partition_of`]), which the
    /// cross-process merge also uses: record placement must be identical
    /// whether one process writes the whole batch or a fleet writes slices
    /// that are merged later.
    pub fn partition_of(trace_type: u64, partitions: usize) -> usize {
        etalumis_data::partition_of(trace_type, partitions)
    }

    /// Shard-file prefix of a partition (`part{p:02}`); delegates to
    /// [`etalumis_data::partition_prefix`].
    pub fn partition_prefix(partition: usize) -> String {
        etalumis_data::partition_prefix(partition)
    }

    /// Sink writing `partitions` independent shard streams under `dir`
    /// (files `part{p:02}_{seq:05}.etlm`), rolling every `traces_per_shard`
    /// records, with address-dictionary encoding. `pruned` follows
    /// [`TraceRecord::from_trace`].
    pub fn new(
        dir: impl AsRef<Path>,
        partitions: usize,
        traces_per_shard: usize,
        pruned: bool,
    ) -> Self {
        let partitions = partitions.max(1);
        let dir = dir.as_ref();
        Self {
            partitions: (0..partitions)
                .map(|p| {
                    Mutex::new(RollingShardWriter::new(
                        dir,
                        Self::partition_prefix(p),
                        traces_per_shard,
                        true,
                    ))
                })
                .collect(),
            pruned,
            error: Mutex::new(None),
        }
    }

    /// Number of partitions.
    pub fn partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Flush every partition; returns all shard paths (partition order, then
    /// roll order) or the first error any worker hit.
    pub fn finish(self) -> io::Result<Vec<PathBuf>> {
        if let Some(e) = self.error.into_inner() {
            return Err(e);
        }
        let mut paths = Vec::new();
        for m in self.partitions {
            paths.extend(m.into_inner().finish()?);
        }
        Ok(paths)
    }
}

impl TraceSink for ShardedTraceSink {
    fn accept(&self, _index: usize, trace: Trace) {
        let rec = TraceRecord::from_trace(&trace, self.pruned);
        let p = Self::partition_of(rec.trace_type, self.partitions.len());
        // etalumis: allow(reactor-blocking, reason = "partition lock held across the shard push is the sink's durable-write contract; contention is per-trace-type")
        if let Err(e) = self.partitions[p].lock().push(rec) {
            self.error.lock().get_or_insert(e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etalumis_core::Executor;
    use etalumis_simulators::BranchingModel;

    #[test]
    fn collect_sink_orders_by_index() {
        let sink = CollectSink::new(3);
        let mut m = BranchingModel::standard();
        let traces: Vec<Trace> = (0..3).map(|s| Executor::sample_prior(&mut m, s)).collect();
        // Deliver out of order.
        sink.accept(2, traces[2].clone());
        sink.accept(0, traces[0].clone());
        sink.accept(1, traces[1].clone());
        let out = sink.into_traces();
        for (a, b) in out.iter().zip(&traces) {
            assert_eq!(a.result, b.result);
        }
    }

    #[test]
    fn partial_delivery_returns_results_and_holes_without_panicking() {
        let sink = CollectSink::new(4);
        let mut m = BranchingModel::standard();
        sink.accept(0, Executor::sample_prior(&mut m, 0));
        sink.accept(2, Executor::sample_prior(&mut m, 2));
        sink.reject(1, "simulator died"); // default no-op, must not panic
        let (delivered, missing) = sink.into_results();
        assert_eq!(delivered.iter().map(|(i, _)| *i).collect::<Vec<_>>(), vec![0, 2]);
        assert_eq!(missing, vec![1, 3]);

        // into_traces yields the partial batch rather than panicking.
        let sink = CollectSink::new(3);
        sink.accept(1, Executor::sample_prior(&mut m, 1));
        assert_eq!(sink.into_traces().len(), 1);
    }

    #[test]
    fn sharded_sink_partitions_by_trace_type() {
        let dir = std::env::temp_dir().join(format!("etalumis_sink_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let sink = ShardedTraceSink::new(&dir, 2, 8, true);
        let mut m = BranchingModel::standard();
        let mut expected = std::collections::HashMap::new();
        for s in 0..40u64 {
            let t = Executor::sample_prior(&mut m, s);
            *expected.entry(t.trace_type().0 % 2).or_insert(0usize) += 1;
            sink.accept(s as usize, t);
        }
        let paths = sink.finish().unwrap();
        let mut per_part = std::collections::HashMap::new();
        let mut total = 0usize;
        for p in &paths {
            let mut r = etalumis_data::ShardReader::open(p).unwrap();
            for rec in r.read_all().unwrap() {
                *per_part.entry(rec.trace_type % 2).or_insert(0usize) += 1;
                // The file's partition matches the record's hash partition.
                let fname = p.file_name().unwrap().to_str().unwrap();
                assert!(fname.starts_with(&format!("part{:02}", rec.trace_type % 2)));
                total += 1;
            }
        }
        assert_eq!(total, 40);
        assert_eq!(per_part, expected);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
