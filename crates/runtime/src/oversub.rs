//! Oversubscribed remote execution: K sessions on M ≤ K worker threads.
//!
//! The blocking [`crate::SimulatorPool`] pins one connection to one worker
//! thread, so a controller waiting on a slow simulator idles a whole core.
//! This module multiplexes instead: a [`MuxSimulatorPool`] holds K
//! handshaked PPX sessions, and [`BatchRunner::run_mux`] drives them from M
//! worker threads, each running a poll reactor over its share of the
//! sessions. A worker services whichever of its sessions is *ready* —
//! while one simulator computes, the worker answers another's sample
//! requests — so one thread hides the latency of many remote simulators
//! (the paper's controller↔Sherpa fleet shape, §4.1).
//!
//! The oversubscription invariant: trace `i` runs on an
//! [`etalumis_core::StepExecutor`] seeded from `mix_seed(seed, i)` with a
//! fresh proposer trace, exactly like the blocking path — so batch content
//! is bit-identical for any worker count M, any session count K, and any
//! readiness interleaving. Only the wall-clock changes.

use crate::batch::{mix_seed, BatchRunner, ProposerFactory, RetryTable, RunStats, WorkerReport};
use crate::scheduler::TaskQueues;
use crate::sink::TraceSink;
use etalumis_core::{ObserveMap, StepExecutor};
use etalumis_distributions::Value;
use etalumis_ppx::{
    Mux, MuxEndpoint, MuxEvent, PpxError, Serviced, Session, SessionAction, SessionState,
    TcpMuxEndpoint,
};
use std::io;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How long a worker sleeps when a poll sweep makes no progress.
const IDLE_BACKOFF: Duration = Duration::from_micros(20);

/// The factory a pool keeps so dead sessions can be re-established
/// mid-batch: `make_endpoint(slot)` produces a fresh transport to the
/// simulator fleet.
pub type EndpointFactory = dyn Fn(usize) -> io::Result<Box<dyn MuxEndpoint>> + Send + Sync;

/// How a [`MuxSimulatorPool`] reacts when a session dies mid-batch.
///
/// A dead session's in-flight trace index is requeued (per-trace seeding
/// makes the rerun bit-identical), and the session slot is re-established
/// through the pool's stored endpoint factory: fresh endpoint, fresh
/// handshake, capped retries with exponential backoff. Respawning is
/// non-blocking — a worker keeps servicing its healthy sessions while a
/// slot waits out its backoff.
#[derive(Clone, Copy, Debug)]
pub struct ReconnectPolicy {
    /// Times one session slot may be respawned during a batch before it is
    /// retired for good.
    pub max_respawns: u32,
    /// Backoff before the first respawn attempt; doubles per consecutive
    /// failure of the same slot.
    pub backoff: Duration,
    /// How long a respawned session may sit in its handshake before the
    /// attempt is treated as a connection death (a peer that accepts the
    /// transport but never replies must not hang the batch).
    pub handshake_timeout: Duration,
}

impl Default for ReconnectPolicy {
    fn default() -> Self {
        Self {
            max_respawns: 3,
            backoff: Duration::from_millis(2),
            handshake_timeout: Duration::from_secs(10),
        }
    }
}

/// K connected, handshaked PPX simulator sessions awaiting multiplexed
/// execution.
///
/// Unlike [`crate::SimulatorPool`], the session count is independent of the
/// worker count: [`BatchRunner::run_mux`] drives K sessions from any
/// M ≤ K threads. The pool remembers how its endpoints were made, so a
/// session that dies mid-batch is respawned in place (see
/// [`ReconnectPolicy`]) instead of permanently failing its share of the
/// work.
pub struct MuxSimulatorPool {
    sessions: Vec<(Box<dyn MuxEndpoint>, Session)>,
    model_name: String,
    make_endpoint: Arc<EndpointFactory>,
    system_name: String,
    policy: ReconnectPolicy,
}

impl MuxSimulatorPool {
    /// Connect `k` sessions over endpoints from `make_endpoint(i)` and
    /// drive every handshake to completion on the calling thread. The
    /// factory is retained for mid-batch session respawn.
    pub fn connect<F>(k: usize, system_name: &str, make_endpoint: F) -> Result<Self, PpxError>
    where
        F: Fn(usize) -> io::Result<Box<dyn MuxEndpoint>> + Send + Sync + 'static,
    {
        let k = k.max(1);
        let mut mux = Mux::new();
        for i in 0..k {
            let ep = make_endpoint(i).map_err(PpxError::from)?;
            mux.add_connect(ep, system_name)?;
        }
        let mut model_name = String::new();
        let mut events = Vec::new();
        let mut connected = 0;
        while connected < k {
            events.clear();
            let progress = mux.poll(&mut events);
            for ev in events.drain(..) {
                match ev {
                    MuxEvent::Action {
                        action: SessionAction::Connected { model_name: name },
                        ..
                    } => {
                        model_name = name;
                        connected += 1;
                    }
                    // `Handshaking` sessions can only yield `Connected`.
                    MuxEvent::Action { .. } => {
                        unreachable!("non-handshake action while connecting") // etalumis: allow(panic-freedom, reason = "mux state machine admits no other event while connecting")
                    }
                    MuxEvent::ConnFailed { error, .. } => return Err(error),
                }
            }
            if !progress {
                std::thread::sleep(IDLE_BACKOFF); // etalumis: allow(reactor-blocking, reason = "bounded idle backoff during connect; no session can make progress this iteration")
            }
        }
        Ok(Self {
            sessions: mux.into_parts(),
            model_name,
            make_endpoint: Arc::new(make_endpoint),
            system_name: system_name.to_string(),
            policy: ReconnectPolicy::default(),
        })
    }

    /// Connect `k` TCP sessions to one listening multi-client server (see
    /// `etalumis_ppx::serve_listener`).
    pub fn connect_tcp(k: usize, addr: &str, system_name: &str) -> Result<Self, PpxError> {
        let addr = addr.to_string();
        Self::connect(k, system_name, move |_| {
            TcpMuxEndpoint::connect(&addr).map(|e| Box::new(e) as Box<dyn MuxEndpoint>)
        })
    }

    /// Override the session [`ReconnectPolicy`] (respawn budget + backoff).
    /// `max_respawns = 0` disables respawning: a dead session stays dead
    /// and only the trace-retry machinery remains.
    pub fn with_reconnect_policy(mut self, policy: ReconnectPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The pool's session reconnect policy.
    pub fn reconnect_policy(&self) -> ReconnectPolicy {
        self.policy
    }

    /// Number of pooled sessions (K).
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// True when the pool holds no sessions (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }

    /// Sessions still able to run traces.
    pub fn live(&self) -> usize {
        self.sessions.iter().filter(|(_, s)| !s.is_dead()).count()
    }

    /// Model name announced by the simulators during the handshake.
    pub fn model_name(&self) -> &str {
        &self.model_name
    }
}

/// Where one session slot stands in its connection lifecycle.
enum SlotConn {
    /// Handshaked and usable; holds the slot's current reactor conn id.
    Ready(usize),
    /// A (re)spawned endpoint whose handshake is in flight.
    Handshaking {
        /// Reactor conn id.
        conn: usize,
        /// When the handshake is abandoned as a connection death.
        deadline: Instant,
    },
    /// The connection died; a respawn attempt is scheduled.
    Backoff {
        /// Earliest instant of the next attempt.
        at: Instant,
    },
    /// Respawn budget exhausted — the slot is out of the batch.
    Retired,
}

/// One session slot inside a worker's reactor.
struct Slot {
    /// Position of this session in the pool (for reassembly after the run).
    global: usize,
    conn: SlotConn,
    /// Respawn attempts consumed by this slot (bounded by
    /// [`ReconnectPolicy::max_respawns`]).
    respawn_attempts: u32,
    /// The session's proposer, parked between traces.
    proposer: Option<Box<dyn etalumis_core::Proposer + Send>>,
    /// The in-flight trace: `(batch index, executor, launch time)`. The
    /// launch time becomes the trace's `runtime.task` span on completion
    /// (wall latency across reactor sweeps, not exclusive CPU time).
    active: Option<(usize, StepExecutor, Instant)>,
    /// The last dead `(endpoint, session)` pair, kept so a retired slot can
    /// still hand *something* back for pool reassembly.
    graveyard: Option<(Box<dyn MuxEndpoint>, Session)>,
}

/// What one worker reactor returns when its share of the batch is done.
struct WorkerOutcome {
    report: WorkerReport,
    failures: Vec<(usize, String)>,
    retries: u64,
    respawns: u64,
    sessions: Vec<(usize, (Box<dyn MuxEndpoint>, Session))>,
}

impl BatchRunner {
    /// Execute `n` traces over a multiplexed session pool: K sessions on
    /// M ≤ K workers (`RuntimeConfig.workers`; 0 means `min(cores, K)`).
    ///
    /// Scheduling is oversubscribed: each worker owns a fixed share of the
    /// sessions but pulls trace indices from the shared work-stealing
    /// queues, launching the next trace on whichever of its sessions is
    /// ready. Per-trace `(seed, i)` derivation is unchanged from
    /// [`BatchRunner::run`], so batch content is bit-identical to the
    /// blocking path for any `(K, M)`. Proposers are per-session (one
    /// `make_proposer(worker)` call each); like the blocking path, each
    /// trace starts with a fresh proposer trace.
    ///
    /// A failed session requeues its in-flight trace (rerun bit-identically
    /// elsewhere, see [`crate::RetryPolicy`]) and is respawned through the
    /// pool's endpoint factory under its [`ReconnectPolicy`] — the batch
    /// completes with full content as long as any session can be kept
    /// alive. Sessions whose respawn budget runs out are retired; traces
    /// whose retry budget runs out land in [`RunStats::failures`].
    pub fn run_mux(
        &self,
        pool: &mut MuxSimulatorPool,
        proposers: &dyn ProposerFactory,
        observes: &ObserveMap,
        n: usize,
        seed: u64,
        sink: &dyn TraceSink,
    ) -> RunStats {
        let k = pool.len();
        let workers = if self.config().workers == 0 {
            std::thread::available_parallelism().map(|c| c.get()).unwrap_or(1).min(k)
        } else {
            self.config().workers
        };
        assert!(
            workers <= k,
            "oversubscribed mode needs workers ({workers}) <= sessions ({k}); \
             extra threads would sit sessionless"
        );
        let stealing = self.config().stealing;
        let queues = TaskQueues::new(workers);
        self.fill_queues(&queues, n);
        let retries = RetryTable::new(self.retry_policy().max_trace_retries);
        let observes = Arc::new(observes.clone());
        let start = Instant::now();

        // Partition sessions round-robin across workers, remembering each
        // one's pool position so the pool can be reassembled afterwards.
        let mut shares: Vec<Vec<(usize, (Box<dyn MuxEndpoint>, Session))>> =
            (0..workers).map(|_| Vec::new()).collect();
        for (g, part) in std::mem::take(&mut pool.sessions).into_iter().enumerate() {
            shares[g % workers].push((g, part));
        }

        let mut per_worker = vec![WorkerReport::default(); workers];
        let mut failures: Vec<(usize, String)> = Vec::new();
        let mut total_retries = 0u64;
        let mut total_respawns = 0u64;
        let mut recovered: Vec<(usize, (Box<dyn MuxEndpoint>, Session))> = Vec::new();
        std::thread::scope(|s| {
            let handles: Vec<_> = shares
                .into_iter()
                .enumerate()
                .map(|(w, share)| {
                    let queues = &queues;
                    let observes = &observes;
                    let retries = &retries;
                    let ctx = ReactorCtx {
                        worker: w,
                        proposers,
                        seed,
                        stealing,
                        respawn: RespawnCtx {
                            factory: pool.make_endpoint.clone(),
                            system_name: pool.system_name.clone(),
                            policy: pool.policy,
                        },
                        kill: self.kill_handle(),
                        tel: self.telemetry().clone(),
                    };
                    s.spawn(move || worker_reactor(ctx, share, observes, queues, retries, sink))
                })
                .collect();
            for (w, h) in handles.into_iter().enumerate() {
                let outcome = h.join().expect("mux worker panicked"); // etalumis: allow(panic-freedom, reason = "join Err only repropagates a worker panic")
                per_worker[w] = outcome.report;
                failures.extend(outcome.failures);
                total_retries += outcome.retries;
                total_respawns += outcome.respawns;
                recovered.extend(outcome.sessions);
            }
        });
        let killed = self.killed();
        if !killed {
            // Indices stranded because every session of their worker
            // retired (and stealing was off, or all workers died): every
            // index must end delivered or failed.
            for i in queues.drain_remaining() {
                sink.reject(i, "not executed: no live sessions left");
                failures.push((i, "not executed: no live sessions left".to_string()));
            }
        }
        recovered.sort_by_key(|(g, _)| *g);
        pool.sessions = recovered.into_iter().map(|(_, part)| part).collect();
        failures.sort_by_key(|(i, _)| *i);
        let stats = RunStats {
            elapsed: start.elapsed(),
            per_worker,
            steals: queues.steals(),
            failures,
            retries: total_retries,
            respawns: total_respawns,
            killed,
        };
        stats.record_to(self.telemetry());
        stats
    }

    /// [`BatchRunner::run_mux`] with prior proposals.
    pub fn run_mux_prior(
        &self,
        pool: &mut MuxSimulatorPool,
        observes: &ObserveMap,
        n: usize,
        seed: u64,
        sink: &dyn TraceSink,
    ) -> RunStats {
        self.run_mux(pool, &crate::batch::PriorProposerFactory, observes, n, seed, sink)
    }
}

/// Everything a worker needs to respawn a dead session slot.
struct RespawnCtx {
    factory: Arc<EndpointFactory>,
    system_name: String,
    policy: ReconnectPolicy,
}

/// Per-worker reactor parameters (bundled to keep the spawn site readable).
struct ReactorCtx<'a> {
    worker: usize,
    proposers: &'a dyn ProposerFactory,
    seed: u64,
    stealing: bool,
    respawn: RespawnCtx,
    kill: Option<Arc<crate::batch::KillSwitch>>,
    tel: etalumis_telemetry::Telemetry,
}

/// The per-worker event loop: a poll reactor over this worker's session
/// slots, with mid-batch respawn.
///
/// The respawn state machine per slot:
///
/// ```text
/// Ready ──conn death──▶ Backoff ──attempt──▶ Handshaking ──Connected──▶ Ready
///   Backoff ──budget exhausted──▶ Retired
///   Handshaking ──conn death──▶ Backoff (next attempt, doubled backoff)
/// ```
///
/// A death requeues the slot's in-flight trace index onto this worker's own
/// deque (per-trace seeding makes the rerun bit-identical wherever it
/// lands); the trace fails only when its [`crate::RetryPolicy`] budget runs
/// out. Backoff is non-blocking: the worker keeps servicing its healthy
/// sessions while a dead slot waits out its delay.
fn worker_reactor(
    ctx: ReactorCtx,
    share: Vec<(usize, (Box<dyn MuxEndpoint>, Session))>,
    observes: &Arc<ObserveMap>,
    queues: &TaskQueues,
    retries: &RetryTable,
    sink: &dyn TraceSink,
) -> WorkerOutcome {
    Reactor {
        ctx,
        observes,
        queues,
        retries,
        sink,
        mux: Mux::new(),
        slots: Vec::with_capacity(share.len()),
        conn_slot: Vec::new(),
        report: WorkerReport::default(),
        failures: Vec::new(),
        requeued: 0,
        respawns: 0,
        drained: false,
        sweeps: 0,
        actions: 0,
        conn_deaths: 0,
        respawn_attempts: 0,
        handshake_timeouts: 0,
    }
    .run(share)
}

/// The mutable state of one worker's reactor loop (see [`worker_reactor`]).
struct Reactor<'a> {
    ctx: ReactorCtx<'a>,
    observes: &'a Arc<ObserveMap>,
    queues: &'a TaskQueues,
    retries: &'a RetryTable,
    sink: &'a dyn TraceSink,
    mux: Mux,
    slots: Vec<Slot>,
    /// conn id → slot index (respawned slots get fresh conn ids).
    conn_slot: Vec<usize>,
    report: WorkerReport,
    failures: Vec<(usize, String)>,
    requeued: u64,
    respawns: u64,
    /// True while the shared queues have come up empty; a requeued trace
    /// clears it (the deque holds work again).
    drained: bool,
    /// Telemetry meters, accumulated locally (one event bundle per reactor
    /// at exit, not one event per sweep): poll sweeps, serviced session
    /// actions, and the respawn/backoff state machine's transitions.
    sweeps: u64,
    actions: u64,
    conn_deaths: u64,
    respawn_attempts: u64,
    handshake_timeouts: u64,
}

impl Reactor<'_> {
    /// Adopt the worker's session share: live sessions join the mux,
    /// dead/abandoned ones go straight to the respawn machinery.
    fn adopt(&mut self, share: Vec<(usize, (Box<dyn MuxEndpoint>, Session))>) {
        for (s_idx, (global, (endpoint, session))) in share.into_iter().enumerate() {
            let state = session.state();
            let mut slot = Slot {
                global,
                conn: SlotConn::Retired,
                proposer: Some(self.ctx.proposers.make_proposer(self.ctx.worker)),
                active: None,
                graveyard: None,
                respawn_attempts: 0,
            };
            match state {
                SessionState::Idle => {
                    slot.conn = SlotConn::Ready(self.register(s_idx, endpoint, session));
                }
                // A respawn from a previous batch still completing; keep
                // polling it.
                SessionState::Handshaking => {
                    slot.conn = SlotConn::Handshaking {
                        conn: self.register(s_idx, endpoint, session),
                        deadline: Instant::now() + self.ctx.respawn.policy.handshake_timeout,
                    };
                }
                // Dead (or abandoned mid-run by a kill switch): hand the
                // pair to the graveyard and let the respawn machinery
                // revive the slot if the policy allows.
                SessionState::Running(_) | SessionState::Done | SessionState::Failed => {
                    slot.graveyard = Some((endpoint, session));
                    slot.conn = if self.ctx.respawn.policy.max_respawns > 0 {
                        SlotConn::Backoff { at: Instant::now() }
                    } else {
                        SlotConn::Retired
                    };
                }
            }
            self.slots.push(slot);
        }
    }

    /// Register a connection with the mux and record its slot mapping.
    fn register(
        &mut self,
        s_idx: usize,
        endpoint: Box<dyn MuxEndpoint>,
        session: Session,
    ) -> usize {
        let conn = self.mux.add(endpoint, session);
        self.conn_slot.push(s_idx);
        debug_assert_eq!(self.conn_slot.len() - 1, conn);
        conn
    }

    /// Schedule the next respawn attempt for a slot (or retire it once the
    /// budget is spent).
    fn schedule_respawn(&mut self, s_idx: usize) {
        let policy = self.ctx.respawn.policy;
        let slot = &mut self.slots[s_idx];
        slot.conn = if slot.respawn_attempts < policy.max_respawns {
            SlotConn::Backoff {
                at: Instant::now() + policy.backoff * (1 << slot.respawn_attempts.min(16)),
            }
        } else {
            SlotConn::Retired
        };
    }

    /// Handle the death of a slot's connection: salvage the dead pair for
    /// reassembly, requeue the in-flight trace, schedule a respawn.
    fn on_conn_death(&mut self, s_idx: usize, conn: usize, error: &str) {
        self.conn_deaths += 1;
        if let Some(pair) = self.mux.detach(conn) {
            self.slots[s_idx].graveyard = Some(pair);
        }
        if let Some((i, _, _)) = self.slots[s_idx].active.take() {
            if self.retries.try_consume(i) {
                // Requeue onto this worker's own deque: its surviving
                // sessions (or a stealing neighbor) rerun it
                // bit-identically.
                self.queues.push(self.ctx.worker, i);
                self.requeued += 1;
                self.drained = false;
            } else {
                self.sink.reject(i, error);
                self.failures.push((i, error.to_string()));
            }
        }
        self.schedule_respawn(s_idx);
    }

    /// Respawn every slot whose backoff has elapsed: fresh endpoint from
    /// the pool's factory, fresh handshake driven through the reactor.
    fn respawn_due(&mut self) -> bool {
        let mut progress = false;
        for s_idx in 0..self.slots.len() {
            let SlotConn::Backoff { at } = self.slots[s_idx].conn else { continue };
            if Instant::now() < at {
                continue;
            }
            self.slots[s_idx].respawn_attempts += 1;
            self.respawn_attempts += 1;
            progress = true;
            let attempt = (self.ctx.respawn.factory)(self.slots[s_idx].global)
                .map_err(PpxError::from)
                .and_then(|ep| self.mux.add_connect(ep, &self.ctx.respawn.system_name));
            match attempt {
                Ok(conn) => {
                    self.conn_slot.push(s_idx);
                    debug_assert_eq!(self.conn_slot.len() - 1, conn);
                    self.slots[s_idx].conn = SlotConn::Handshaking {
                        conn,
                        deadline: Instant::now() + self.ctx.respawn.policy.handshake_timeout,
                    };
                }
                Err(_) => {
                    // The handshake send may have registered (and killed) a
                    // connection; salvage it if so.
                    if self.conn_slot.len() < self.mux.len() {
                        self.conn_slot.push(s_idx);
                        if let Some(pair) = self.mux.detach(self.mux.len() - 1) {
                            self.slots[s_idx].graveyard = Some(pair);
                        }
                    }
                    self.schedule_respawn(s_idx);
                }
            }
        }
        progress
    }

    /// Abandon handshakes that outlived the policy deadline: the peer
    /// accepted a transport but never completed the protocol, which must
    /// not hang the batch. Counts as a connection death (respawn budget).
    fn expire_handshakes(&mut self) {
        for s_idx in 0..self.slots.len() {
            let SlotConn::Handshaking { conn, deadline } = self.slots[s_idx].conn else { continue };
            if Instant::now() < deadline {
                continue;
            }
            self.mux.session_mut(conn).fail();
            self.handshake_timeouts += 1;
            self.on_conn_death(s_idx, conn, "handshake timed out");
        }
    }

    /// Launch the next trace on every ready, idle session.
    fn launch_ready(&mut self) -> bool {
        let mut progress = false;
        for s_idx in 0..self.slots.len() {
            let SlotConn::Ready(conn) = self.slots[s_idx].conn else { continue };
            if self.drained || self.slots[s_idx].active.is_some() {
                continue;
            }
            if self.mux.is_dead(conn) {
                // Death observed outside the event stream (poisoned during
                // a previous sweep's servicing).
                self.on_conn_death(s_idx, conn, "session poisoned");
                continue;
            }
            let Some(i) = self.queues.pop(self.ctx.worker, self.ctx.stealing) else {
                self.drained = true;
                break;
            };
            let slot = &mut self.slots[s_idx];
            let proposer = slot
                .proposer
                .take()
                .unwrap_or_else(|| self.ctx.proposers.make_proposer(self.ctx.worker));
            let exec =
                StepExecutor::new(proposer, self.observes.clone(), mix_seed(self.ctx.seed, i));
            let started = match self.mux.session_mut(conn).start_run(Value::Unit) {
                Ok(run) => self.mux.send(conn, &run),
                Err(e) => Err(e),
            };
            progress = true;
            match started {
                Ok(()) => self.slots[s_idx].active = Some((i, exec, Instant::now())),
                Err(e) => {
                    // Died between traces: the popped index goes through the
                    // same requeue path as an in-flight one.
                    self.slots[s_idx].active = Some((i, exec, Instant::now()));
                    self.on_conn_death(s_idx, conn, &e.to_string());
                }
            }
        }
        progress
    }

    /// Service one mux event; `true` if it made progress.
    fn handle_event(&mut self, ev: MuxEvent) -> bool {
        match ev {
            MuxEvent::Action { conn, action } => {
                let s_idx = self.conn_slot[conn];
                if let SessionAction::Connected { .. } = action {
                    let slot = &mut self.slots[s_idx];
                    if matches!(slot.conn, SlotConn::Handshaking { conn: c, .. } if c == conn) {
                        slot.conn = SlotConn::Ready(conn);
                        self.respawns += 1;
                        return true;
                    }
                    return false;
                }
                if self.slots[s_idx].active.is_none() {
                    // An action with no run in flight is a protocol
                    // violation; poison and respawn the connection.
                    self.mux.session_mut(conn).fail();
                    self.on_conn_death(
                        s_idx,
                        conn,
                        "protocol violation: action with no run in flight",
                    );
                    return true;
                }
                self.actions += 1;
                let t0 = Instant::now();
                let serviced = {
                    let (_, exec, _) = self.slots[s_idx].active.as_mut().unwrap(); // etalumis: allow(panic-freedom, reason = "slot is active for the duration of a serviced action (reactor invariant)")
                    self.mux.session_mut(conn).service(action, exec)
                };
                self.report.busy += t0.elapsed();
                match serviced {
                    Ok(Serviced::Reply(reply)) => {
                        if let Err(e) = self.mux.send(conn, &reply) {
                            self.on_conn_death(s_idx, conn, &e.to_string());
                        }
                    }
                    Ok(Serviced::Finished(result)) => {
                        let (i, exec, launched) = self.slots[s_idx].active.take().unwrap(); // etalumis: allow(panic-freedom, reason = "slot is active for the duration of a serviced action (reactor invariant)")
                        let (trace, proposer) = exec.finish(result);
                        self.slots[s_idx].proposer = Some(proposer);
                        self.report.executed += 1;
                        if self.ctx.tel.is_enabled() {
                            let _scope = self.ctx.tel.worker_scope(self.ctx.worker as u32);
                            self.ctx.tel.span_record("runtime.task", launched.elapsed());
                        }
                        self.sink.accept(i, trace);
                        if let Some(k) = self.ctx.kill.as_ref() {
                            k.tick();
                        }
                    }
                    Ok(Serviced::Connected(_)) => {
                        unreachable!("Connected actions are handled above") // etalumis: allow(panic-freedom, reason = "mux state machine routes Connected before servicing")
                    }
                    Err(e) => self.on_conn_death(s_idx, conn, &e.to_string()),
                }
                true
            }
            MuxEvent::ConnFailed { conn, error } => {
                let s_idx = self.conn_slot[conn];
                self.on_conn_death(s_idx, conn, &error.to_string());
                true
            }
        }
    }

    fn run(mut self, share: Vec<(usize, (Box<dyn MuxEndpoint>, Session))>) -> WorkerOutcome {
        self.adopt(share);
        let mut events: Vec<MuxEvent> = Vec::new();
        loop {
            if self.ctx.kill.as_ref().is_some_and(|k| k.killed()) {
                break;
            }
            self.sweeps += 1;
            let mut progress = self.respawn_due();
            self.expire_handshakes();
            progress |= self.launch_ready();

            // Every slot retired: leave the remaining share for stealing
            // neighbors (run_mux drains true stragglers after the join).
            if self.slots.iter().all(|s| matches!(s.conn, SlotConn::Retired)) {
                break;
            }

            // Ingest frames, advance state machines, service the actions.
            events.clear();
            progress |= self.mux.poll(&mut events);
            for ev in events.drain(..) {
                progress |= self.handle_event(ev);
            }

            if self.drained && self.slots.iter().all(|s| s.active.is_none()) {
                break;
            }
            if !progress {
                std::thread::sleep(IDLE_BACKOFF); // etalumis: allow(reactor-blocking, reason = "the reactor's own bounded idle backoff: nothing to poll, nothing to service")
            }
        }

        // Record this reactor's telemetry as one worker-attributed bundle:
        // the respawn/backoff state machine's transitions, the sweep/action
        // meters, and the underlying mux's frame accounting. Doing it once
        // at exit (instead of one event per sweep) keeps the event log
        // proportional to the batch, not to idle polling.
        if self.ctx.tel.is_enabled() {
            let tel = &self.ctx.tel;
            let _scope = tel.worker_scope(self.ctx.worker as u32);
            let mstats = self.mux.stats();
            tel.count("mux.sweeps", self.sweeps);
            tel.count("mux.polls", mstats.polls);
            tel.count("mux.frames_in", mstats.frames_in);
            tel.count("mux.frames_out", mstats.frames_out);
            tel.count("mux.conn_failures", mstats.conn_failures);
            tel.count("mux.actions", self.actions);
            tel.count("mux.conn_deaths", self.conn_deaths);
            tel.count("mux.respawn_attempts", self.respawn_attempts);
            tel.count("mux.respawns", self.respawns);
            tel.count("mux.handshake_timeouts", self.handshake_timeouts);
            tel.span_record("mux.service_busy", self.report.busy);
        }

        // Reassemble the pool's session pairs: live conns come back out of
        // the reactor; dead/retired slots return their last known (dead)
        // pair.
        let mux = &mut self.mux;
        let sessions = self
            .slots
            .into_iter()
            .map(|mut slot| {
                let pair = match slot.conn {
                    SlotConn::Ready(conn) | SlotConn::Handshaking { conn, .. } => mux
                        .detach(conn)
                        .or_else(|| slot.graveyard.take())
                        .unwrap_or_else(dead_placeholder),
                    SlotConn::Backoff { .. } | SlotConn::Retired => {
                        slot.graveyard.take().unwrap_or_else(dead_placeholder)
                    }
                };
                (slot.global, pair)
            })
            .collect();
        WorkerOutcome {
            report: self.report,
            failures: self.failures,
            retries: self.requeued,
            respawns: self.respawns,
            sessions,
        }
    }
}

/// A dead `(endpoint, session)` pair for slots with nothing to return (the
/// endpoint was consumed by a failed respawn attempt).
fn dead_placeholder() -> (Box<dyn MuxEndpoint>, Session) {
    (Box::new(ClosedEndpoint), Session::poisoned())
}

/// An endpoint that is permanently disconnected.
struct ClosedEndpoint;

impl MuxEndpoint for ClosedEndpoint {
    fn poll_frame(&mut self) -> Result<Option<Vec<u8>>, PpxError> {
        Err(PpxError::Disconnected)
    }

    fn send_frame(&mut self, _payload: Vec<u8>) -> Result<(), PpxError> {
        Err(PpxError::Disconnected)
    }

    fn flush(&mut self) -> Result<bool, PpxError> {
        Err(PpxError::Disconnected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::RuntimeConfig;
    use crate::pool::SimulatorPool;
    use crate::sink::{CollectSink, CountingSink};
    use etalumis_core::{FnProgram, SimCtx, SimCtxExt, Trace};
    use etalumis_distributions::Distribution;
    use etalumis_ppx::{
        BlockingMux, FragmentingEndpoint, InProcMuxEndpoint, InProcTransport, RemoteModel,
        SimulatorServer,
    };

    fn test_model() -> FnProgram<impl FnMut(&mut dyn SimCtx) -> Value> {
        FnProgram::new("oversub_model", |ctx: &mut dyn SimCtx| {
            let mu = ctx.sample_f64(&Distribution::Normal { mean: 0.0, std: 1.0 }, "mu");
            let k =
                ctx.sample_i64(&Distribution::Categorical { probs: vec![0.5, 0.3, 0.2] }, "branch");
            for j in 0..=k {
                let _ = ctx
                    .sample_f64(&Distribution::Normal { mean: mu, std: 1.0 + j as f64 }, "noise");
            }
            ctx.observe(&Distribution::Normal { mean: mu, std: 0.5 }, "y");
            ctx.tag("branch_tag", Value::Int(k));
            Value::Real(mu)
        })
    }

    fn spawn_inproc_server() -> InProcMuxEndpoint {
        let (ep, sim_side) = InProcMuxEndpoint::pair();
        std::thread::spawn(move || {
            let mut server = SimulatorServer::new("rt-mux", test_model());
            let mut t = sim_side;
            let _ = server.serve(&mut t);
        });
        ep
    }

    fn spawn_fragmenting_server(seed: u64) -> FragmentingEndpoint {
        let (ep, sim_side) = FragmentingEndpoint::pair(seed, 5);
        std::thread::spawn(move || {
            let mut server = SimulatorServer::new("rt-mux", test_model());
            let mut t = BlockingMux(sim_side);
            let _ = server.serve(&mut t);
        });
        ep
    }

    /// Reference: the blocking path over one remote connection.
    fn blocking_reference(n: usize, seed: u64) -> Vec<Trace> {
        let mut pool = SimulatorPool::connect_ppx(1, |_| {
            let (controller_side, sim_side) = InProcTransport::pair();
            std::thread::spawn(move || {
                let mut server = SimulatorServer::new("rt-mux", test_model());
                let mut t = sim_side;
                let _ = server.serve(&mut t);
            });
            RemoteModel::connect(controller_side, "etalumis-rs")
        })
        .unwrap();
        let runner = BatchRunner::new(RuntimeConfig { workers: 1, stealing: true });
        let sink = CollectSink::new(n);
        let observes = ObserveMap::new();
        let stats = runner.run_prior(&mut pool, &observes, n, seed, &sink);
        assert!(stats.failures.is_empty());
        sink.into_traces()
    }

    fn assert_traces_bit_identical(a: &[Trace], b: &[Trace], label: &str) {
        assert_eq!(a.len(), b.len(), "{label}: trace count");
        for (idx, (x, y)) in a.iter().zip(b).enumerate() {
            assert_eq!(x.entries.len(), y.entries.len(), "{label}: entries of trace {idx}");
            for (ex, ey) in x.entries.iter().zip(&y.entries) {
                assert_eq!(ex.address, ey.address, "{label}: address in trace {idx}");
                assert_eq!(ex.value, ey.value, "{label}: value in trace {idx}");
                assert_eq!(ex.log_prob.to_bits(), ey.log_prob.to_bits(), "{label}: trace {idx}");
                assert_eq!(ex.log_q.to_bits(), ey.log_q.to_bits(), "{label}: trace {idx}");
            }
            assert_eq!(x.result, y.result, "{label}: result of trace {idx}");
            assert_eq!(x.tags, y.tags, "{label}: tags of trace {idx}");
            assert_eq!(x.log_prior.to_bits(), y.log_prior.to_bits(), "{label}: trace {idx}");
            assert_eq!(
                x.log_likelihood.to_bits(),
                y.log_likelihood.to_bits(),
                "{label}: trace {idx}"
            );
        }
    }

    #[test]
    fn single_reactor_thread_drives_eight_sessions_bit_identical_to_blocking() {
        let n = 48;
        let seed = 2024;
        let reference = blocking_reference(n, seed);

        let mut pool = MuxSimulatorPool::connect(8, "etalumis-rs", |_| {
            Ok(Box::new(spawn_inproc_server()) as Box<dyn MuxEndpoint>)
        })
        .unwrap();
        assert_eq!(pool.len(), 8);
        assert_eq!(pool.model_name(), "oversub_model");
        // One worker thread, eight concurrent sessions.
        let runner = BatchRunner::new(RuntimeConfig { workers: 1, stealing: true });
        let sink = CollectSink::new(n);
        let observes = ObserveMap::new();
        let stats = runner.run_mux_prior(&mut pool, &observes, n, seed, &sink);
        assert_eq!(stats.total_executed(), n);
        assert!(stats.failures.is_empty(), "failures: {:?}", stats.failures);
        assert_eq!(stats.per_worker.len(), 1);
        assert_eq!(pool.live(), 8, "sessions must survive the batch");
        assert_traces_bit_identical(&sink.into_traces(), &reference, "mux 1x8");
    }

    #[test]
    fn oversubscription_is_invariant_to_workers_sessions_and_fragmentation() {
        let n = 30;
        let seed = 777;
        let reference = blocking_reference(n, seed);
        // Fragmented transports: frames arrive split at pseudo-random byte
        // boundaries, interleaved across concurrent sessions.
        for (k, m) in [(2usize, 1usize), (4, 2), (6, 3)] {
            let mut pool = MuxSimulatorPool::connect(k, "etalumis-rs", move |i| {
                Ok(Box::new(spawn_fragmenting_server(seed ^ (i as u64) << 3))
                    as Box<dyn MuxEndpoint>)
            })
            .unwrap();
            let runner = BatchRunner::new(RuntimeConfig { workers: m, stealing: true });
            let sink = CollectSink::new(n);
            let observes = ObserveMap::new();
            let stats = runner.run_mux_prior(&mut pool, &observes, n, seed, &sink);
            assert_eq!(stats.total_executed(), n, "K={k} M={m}");
            assert!(stats.failures.is_empty(), "K={k} M={m}: {:?}", stats.failures);
            assert_traces_bit_identical(&sink.into_traces(), &reference, &format!("K={k} M={m}"));
        }
    }

    #[test]
    fn pool_sessions_are_reusable_across_batches() {
        let mut pool = MuxSimulatorPool::connect(3, "etalumis-rs", |_| {
            Ok(Box::new(spawn_inproc_server()) as Box<dyn MuxEndpoint>)
        })
        .unwrap();
        let runner = BatchRunner::new(RuntimeConfig { workers: 2, stealing: true });
        let observes = ObserveMap::new();
        for seed in [1u64, 2, 3] {
            let sink = CountingSink::default();
            let stats = runner.run_mux_prior(&mut pool, &observes, 12, seed, &sink);
            assert_eq!(stats.total_executed(), 12, "batch with seed {seed}");
            assert_eq!(sink.count(), 12);
            assert_eq!(pool.live(), 3);
        }
    }

    /// An endpoint that dies after a fixed number of delivered frames.
    struct FailAfter {
        inner: InProcMuxEndpoint,
        frames_left: usize,
    }

    impl MuxEndpoint for FailAfter {
        fn poll_frame(&mut self) -> Result<Option<Vec<u8>>, PpxError> {
            if self.frames_left == 0 {
                return Err(PpxError::Disconnected);
            }
            let f = self.inner.poll_frame()?;
            if f.is_some() {
                self.frames_left -= 1;
            }
            Ok(f)
        }

        fn send_frame(&mut self, payload: Vec<u8>) -> Result<(), PpxError> {
            self.inner.send_frame(payload)
        }

        fn flush(&mut self) -> Result<bool, PpxError> {
            self.inner.flush()
        }
    }

    /// Endpoint factory where session 0's *first* endpoint dies after
    /// `frames` delivered frames and every later endpoint (the respawns) is
    /// healthy — one simulator crash, then a clean replacement.
    fn crash_once_factory(
        frames: usize,
    ) -> impl Fn(usize) -> std::io::Result<Box<dyn MuxEndpoint>> + Send + Sync + 'static {
        use std::sync::atomic::{AtomicBool, Ordering};
        let crashed = std::sync::Arc::new(AtomicBool::new(false));
        move |i| {
            let inner = spawn_inproc_server();
            let ep: Box<dyn MuxEndpoint> = if i == 0 && !crashed.swap(true, Ordering::SeqCst) {
                Box::new(FailAfter { inner, frames_left: frames })
            } else {
                Box::new(inner)
            };
            Ok(ep)
        }
    }

    #[test]
    fn killed_session_is_respawned_and_batch_content_is_bit_identical() {
        let n = 24;
        let seed = 91;
        let reference = blocking_reference(n, seed);
        // Session 0 dies mid-batch (after its handshake + a few trace
        // frames); the respawned replacement is healthy.
        let mut pool = MuxSimulatorPool::connect(2, "etalumis-rs", crash_once_factory(7)).unwrap();
        let runner = BatchRunner::new(RuntimeConfig { workers: 1, stealing: true });
        let sink = CollectSink::new(n);
        let observes = ObserveMap::new();
        let stats = runner.run_mux_prior(&mut pool, &observes, n, seed, &sink);
        assert!(stats.failures.is_empty(), "respawn must absorb the crash: {stats:?}");
        assert_eq!(stats.total_executed(), n);
        assert_eq!(stats.respawns, 1, "exactly one session respawn expected: {stats:?}");
        assert!(stats.retries >= 1, "the in-flight trace must have been requeued: {stats:?}");
        assert_eq!(pool.live(), 2, "the respawned session rejoins the pool");
        // The spine of the fault-tolerance PR: content is bit-identical to
        // an undisturbed blocking run despite the mid-batch death.
        assert_traces_bit_identical(&sink.into_traces(), &reference, "respawned mux");
    }

    #[test]
    fn respawn_budget_exhaustion_retires_the_slot_but_accounts_every_index() {
        let n = 20;
        // Session 0's endpoint always dies after a few frames — every
        // respawn is doomed; session 1 is healthy.
        let mut pool = MuxSimulatorPool::connect(2, "etalumis-rs", |i| {
            let inner = spawn_inproc_server();
            let ep: Box<dyn MuxEndpoint> = if i == 0 {
                Box::new(FailAfter { inner, frames_left: 9 })
            } else {
                Box::new(inner)
            };
            Ok(ep)
        })
        .unwrap();
        let runner = BatchRunner::new(RuntimeConfig { workers: 1, stealing: true });
        let sink = CountingSink::default();
        let observes = ObserveMap::new();
        let stats = runner.run_mux_prior(&mut pool, &observes, n, 5, &sink);
        assert_eq!(
            stats.total_executed() + stats.failures.len(),
            n,
            "every index is either delivered or recorded as failed: {stats:?}"
        );
        assert_eq!(sink.count(), stats.total_executed());
        assert!(
            stats.total_executed() >= n - pool.reconnect_policy().max_respawns as usize - 1,
            "the healthy session should deliver nearly everything: {stats:?}"
        );
        // The healthy session always survives; the dying slot may read as
        // live if its final respawn had not yet burned through its frame
        // budget when the batch drained.
        assert!(pool.live() >= 1, "the healthy session must survive");
    }

    /// An endpoint that accepts frames but never delivers any — a peer
    /// that connects and then stays silent.
    struct BlackHole;

    impl MuxEndpoint for BlackHole {
        fn poll_frame(&mut self) -> Result<Option<Vec<u8>>, PpxError> {
            Ok(None)
        }

        fn send_frame(&mut self, _payload: Vec<u8>) -> Result<(), PpxError> {
            Ok(())
        }

        fn flush(&mut self) -> Result<bool, PpxError> {
            Ok(true)
        }
    }

    #[test]
    fn silent_respawn_peer_times_out_instead_of_hanging_the_batch() {
        let n = 16;
        // Session 0 dies quickly; every respawn endpoint is a black hole
        // whose handshake never completes. The handshake timeout must
        // convert those into respawn-budget deaths so the batch finishes
        // on session 1 instead of hanging forever.
        let mut pool = MuxSimulatorPool::connect(2, "etalumis-rs", |i| {
            let ep: Box<dyn MuxEndpoint> = if i == 0 {
                Box::new(FailAfter { inner: spawn_inproc_server(), frames_left: 6 })
            } else {
                Box::new(spawn_inproc_server())
            };
            Ok(ep)
        })
        .unwrap()
        .with_reconnect_policy(ReconnectPolicy {
            handshake_timeout: Duration::from_millis(20),
            ..Default::default()
        });
        // Swap the factory's behavior is not possible post-connect, but the
        // FailAfter respawns are themselves FailAfter(6): handshake result
        // (1 frame) + a few more, then death — exercising repeated deaths.
        // The black-hole case is covered by a second pool below.
        let runner = BatchRunner::new(RuntimeConfig { workers: 1, stealing: true });
        let sink = CountingSink::default();
        let observes = ObserveMap::new();
        let stats = runner.run_mux_prior(&mut pool, &observes, n, 9, &sink);
        assert_eq!(stats.total_executed() + stats.failures.len(), n, "{stats:?}");

        // Now the literal black hole: session 0's respawns never handshake.
        use std::sync::atomic::{AtomicBool, Ordering};
        let crashed = std::sync::Arc::new(AtomicBool::new(false));
        let mut pool = MuxSimulatorPool::connect(2, "etalumis-rs", move |i| {
            let ep: Box<dyn MuxEndpoint> = if i == 0 {
                if !crashed.swap(true, Ordering::SeqCst) {
                    Box::new(FailAfter { inner: spawn_inproc_server(), frames_left: 6 })
                } else {
                    Box::new(BlackHole)
                }
            } else {
                Box::new(spawn_inproc_server())
            };
            Ok(ep)
        })
        .unwrap()
        .with_reconnect_policy(ReconnectPolicy {
            handshake_timeout: Duration::from_millis(20),
            ..Default::default()
        });
        let sink = CountingSink::default();
        let start = std::time::Instant::now();
        let stats = runner.run_mux_prior(&mut pool, &observes, n, 9, &sink);
        assert_eq!(stats.total_executed() + stats.failures.len(), n, "{stats:?}");
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "silent handshakes must time out, not hang: {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn respawn_disabled_reproduces_fail_fast_semantics() {
        let n = 12;
        let mut pool = MuxSimulatorPool::connect(2, "etalumis-rs", |i| {
            let inner = spawn_inproc_server();
            let ep: Box<dyn MuxEndpoint> = if i == 0 {
                Box::new(FailAfter { inner, frames_left: 9 })
            } else {
                Box::new(inner)
            };
            Ok(ep)
        })
        .unwrap()
        .with_reconnect_policy(ReconnectPolicy { max_respawns: 0, ..Default::default() });
        let runner = BatchRunner::new(RuntimeConfig { workers: 1, stealing: true });
        let sink = CountingSink::default();
        let observes = ObserveMap::new();
        let stats = runner.run_mux_prior(&mut pool, &observes, n, 5, &sink);
        assert_eq!(stats.respawns, 0);
        assert_eq!(stats.total_executed() + stats.failures.len(), n, "{stats:?}");
        assert_eq!(pool.live(), 1);
    }
}
