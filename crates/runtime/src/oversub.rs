//! Oversubscribed remote execution: K sessions on M ≤ K worker threads.
//!
//! The blocking [`crate::SimulatorPool`] pins one connection to one worker
//! thread, so a controller waiting on a slow simulator idles a whole core.
//! This module multiplexes instead: a [`MuxSimulatorPool`] holds K
//! handshaked PPX sessions, and [`BatchRunner::run_mux`] drives them from M
//! worker threads, each running a poll reactor over its share of the
//! sessions. A worker services whichever of its sessions is *ready* —
//! while one simulator computes, the worker answers another's sample
//! requests — so one thread hides the latency of many remote simulators
//! (the paper's controller↔Sherpa fleet shape, §4.1).
//!
//! The oversubscription invariant: trace `i` runs on an
//! [`etalumis_core::StepExecutor`] seeded from `mix_seed(seed, i)` with a
//! fresh proposer trace, exactly like the blocking path — so batch content
//! is bit-identical for any worker count M, any session count K, and any
//! readiness interleaving. Only the wall-clock changes.

use crate::batch::{mix_seed, BatchRunner, ProposerFactory, RunStats, WorkerReport};
use crate::scheduler::TaskQueues;
use crate::sink::TraceSink;
use etalumis_core::{ObserveMap, StepExecutor};
use etalumis_distributions::Value;
use etalumis_ppx::{
    Mux, MuxEndpoint, MuxEvent, PpxError, Serviced, Session, SessionAction, TcpMuxEndpoint,
};
use std::io;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How long a worker sleeps when a poll sweep makes no progress.
const IDLE_BACKOFF: Duration = Duration::from_micros(20);

/// K connected, handshaked PPX simulator sessions awaiting multiplexed
/// execution.
///
/// Unlike [`crate::SimulatorPool`], the session count is independent of the
/// worker count: [`BatchRunner::run_mux`] drives K sessions from any
/// M ≤ K threads.
pub struct MuxSimulatorPool {
    sessions: Vec<(Box<dyn MuxEndpoint>, Session)>,
    model_name: String,
}

impl MuxSimulatorPool {
    /// Connect `k` sessions over endpoints from `make_endpoint(i)` and
    /// drive every handshake to completion on the calling thread.
    pub fn connect<F>(k: usize, system_name: &str, mut make_endpoint: F) -> Result<Self, PpxError>
    where
        F: FnMut(usize) -> io::Result<Box<dyn MuxEndpoint>>,
    {
        let k = k.max(1);
        let mut mux = Mux::new();
        for i in 0..k {
            let ep = make_endpoint(i).map_err(PpxError::from)?;
            mux.add_connect(ep, system_name)?;
        }
        let mut model_name = String::new();
        let mut events = Vec::new();
        let mut connected = 0;
        while connected < k {
            events.clear();
            let progress = mux.poll(&mut events);
            for ev in events.drain(..) {
                match ev {
                    MuxEvent::Action {
                        action: SessionAction::Connected { model_name: name },
                        ..
                    } => {
                        model_name = name;
                        connected += 1;
                    }
                    // `Handshaking` sessions can only yield `Connected`.
                    MuxEvent::Action { .. } => {
                        unreachable!("non-handshake action while connecting")
                    }
                    MuxEvent::ConnFailed { error, .. } => return Err(error),
                }
            }
            if !progress {
                std::thread::sleep(IDLE_BACKOFF);
            }
        }
        Ok(Self { sessions: mux.into_parts(), model_name })
    }

    /// Connect `k` TCP sessions to one listening multi-client server (see
    /// `etalumis_ppx::serve_listener`).
    pub fn connect_tcp(k: usize, addr: &str, system_name: &str) -> Result<Self, PpxError> {
        Self::connect(k, system_name, |_| {
            TcpMuxEndpoint::connect(addr).map(|e| Box::new(e) as Box<dyn MuxEndpoint>)
        })
    }

    /// Number of pooled sessions (K).
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// True when the pool holds no sessions (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }

    /// Sessions still able to run traces.
    pub fn live(&self) -> usize {
        self.sessions.iter().filter(|(_, s)| !s.is_dead()).count()
    }

    /// Model name announced by the simulators during the handshake.
    pub fn model_name(&self) -> &str {
        &self.model_name
    }
}

/// One session slot inside a worker's reactor.
struct Slot {
    /// Position of this session in the pool (for reassembly after the run).
    global: usize,
    /// The session's proposer, parked between traces.
    proposer: Option<Box<dyn etalumis_core::Proposer + Send>>,
    /// The in-flight trace: `(batch index, executor)`.
    active: Option<(usize, StepExecutor)>,
}

/// What one worker reactor returns when its share of the batch is done.
struct WorkerOutcome {
    report: WorkerReport,
    failures: Vec<(usize, String)>,
    sessions: Vec<(usize, (Box<dyn MuxEndpoint>, Session))>,
}

impl BatchRunner {
    /// Execute `n` traces over a multiplexed session pool: K sessions on
    /// M ≤ K workers (`RuntimeConfig.workers`; 0 means `min(cores, K)`).
    ///
    /// Scheduling is oversubscribed: each worker owns a fixed share of the
    /// sessions but pulls trace indices from the shared work-stealing
    /// queues, launching the next trace on whichever of its sessions is
    /// ready. Per-trace `(seed, i)` derivation is unchanged from
    /// [`BatchRunner::run`], so batch content is bit-identical to the
    /// blocking path for any `(K, M)`. Proposers are per-session (one
    /// `make_proposer(worker)` call each); like the blocking path, each
    /// trace starts with a fresh proposer trace.
    ///
    /// Failed sessions poison only their in-flight trace (recorded in
    /// [`RunStats::failures`]); remaining sessions finish the batch. If a
    /// worker loses all its sessions it drains its queue share into
    /// `failures` rather than stranding the batch.
    pub fn run_mux(
        &self,
        pool: &mut MuxSimulatorPool,
        proposers: &dyn ProposerFactory,
        observes: &ObserveMap,
        n: usize,
        seed: u64,
        sink: &dyn TraceSink,
    ) -> RunStats {
        let k = pool.len();
        let workers = if self.config().workers == 0 {
            std::thread::available_parallelism().map(|c| c.get()).unwrap_or(1).min(k)
        } else {
            self.config().workers
        };
        assert!(
            workers <= k,
            "oversubscribed mode needs workers ({workers}) <= sessions ({k}); \
             extra threads would sit sessionless"
        );
        let stealing = self.config().stealing;
        let queues = TaskQueues::new(workers);
        queues.fill_blocks(n);
        let observes = Arc::new(observes.clone());
        let start = Instant::now();

        // Partition sessions round-robin across workers, remembering each
        // one's pool position so the pool can be reassembled afterwards.
        let mut shares: Vec<Vec<(usize, (Box<dyn MuxEndpoint>, Session))>> =
            (0..workers).map(|_| Vec::new()).collect();
        for (g, part) in std::mem::take(&mut pool.sessions).into_iter().enumerate() {
            shares[g % workers].push((g, part));
        }

        let mut per_worker = vec![WorkerReport::default(); workers];
        let mut failures: Vec<(usize, String)> = Vec::new();
        let mut recovered: Vec<(usize, (Box<dyn MuxEndpoint>, Session))> = Vec::new();
        std::thread::scope(|s| {
            let handles: Vec<_> = shares
                .into_iter()
                .enumerate()
                .map(|(w, share)| {
                    let queues = &queues;
                    let observes = &observes;
                    s.spawn(move || {
                        worker_reactor(w, share, proposers, observes, seed, stealing, queues, sink)
                    })
                })
                .collect();
            for (w, h) in handles.into_iter().enumerate() {
                let outcome = h.join().expect("mux worker panicked");
                per_worker[w] = outcome.report;
                failures.extend(outcome.failures);
                recovered.extend(outcome.sessions);
            }
        });
        recovered.sort_by_key(|(g, _)| *g);
        pool.sessions = recovered.into_iter().map(|(_, part)| part).collect();
        failures.sort_by_key(|(i, _)| *i);
        RunStats { elapsed: start.elapsed(), per_worker, steals: queues.steals(), failures }
    }

    /// [`BatchRunner::run_mux`] with prior proposals.
    pub fn run_mux_prior(
        &self,
        pool: &mut MuxSimulatorPool,
        observes: &ObserveMap,
        n: usize,
        seed: u64,
        sink: &dyn TraceSink,
    ) -> RunStats {
        self.run_mux(pool, &crate::batch::PriorProposerFactory, observes, n, seed, sink)
    }
}

/// The per-worker event loop: a poll reactor over this worker's sessions.
#[allow(clippy::too_many_arguments)]
fn worker_reactor(
    worker: usize,
    share: Vec<(usize, (Box<dyn MuxEndpoint>, Session))>,
    proposers: &dyn ProposerFactory,
    observes: &Arc<ObserveMap>,
    seed: u64,
    stealing: bool,
    queues: &TaskQueues,
    sink: &dyn TraceSink,
) -> WorkerOutcome {
    let mut mux = Mux::new();
    let mut slots: Vec<Slot> = Vec::with_capacity(share.len());
    for (global, (endpoint, session)) in share {
        mux.add(endpoint, session);
        slots.push(Slot { global, proposer: Some(proposers.make_proposer(worker)), active: None });
    }

    let mut report = WorkerReport::default();
    let mut failures: Vec<(usize, String)> = Vec::new();
    let mut events: Vec<MuxEvent> = Vec::new();
    // Set once a pop returns None; tasks are never re-queued, so "drained"
    // is permanent and the loop ends when in-flight traces do.
    let mut drained = false;
    loop {
        let mut progress = false;

        // Launch the next trace on every ready session.
        for (conn, slot) in slots.iter_mut().enumerate() {
            if drained || slot.active.is_some() || mux.is_dead(conn) {
                continue;
            }
            let Some(i) = queues.pop(worker, stealing) else {
                drained = true;
                break;
            };
            let proposer = slot.proposer.take().unwrap_or_else(|| proposers.make_proposer(worker));
            let exec = StepExecutor::new(proposer, observes.clone(), mix_seed(seed, i));
            let started = match mux.session_mut(conn).start_run(Value::Unit) {
                Ok(run) => mux.send(conn, &run),
                Err(e) => Err(e),
            };
            match started {
                Ok(()) => {
                    slot.active = Some((i, exec));
                    progress = true;
                }
                Err(e) => {
                    // The session died between traces: this index fails,
                    // the slot is retired, and the loop goes on.
                    failures.push((i, e.to_string()));
                    progress = true;
                }
            }
        }

        // If every session is gone, drain the remaining share as failures
        // instead of stranding the batch.
        if mux.live() == 0 {
            while let Some(i) = queues.pop(worker, stealing) {
                failures.push((i, "no live sessions left on this worker".to_string()));
            }
            break;
        }

        // Ingest frames, advance state machines, service the actions.
        events.clear();
        progress |= mux.poll(&mut events);
        for ev in events.drain(..) {
            match ev {
                MuxEvent::Action { conn, action } => {
                    let slot = &mut slots[conn];
                    let Some((_, exec)) = slot.active.as_mut() else {
                        // An action with no run in flight is a protocol
                        // violation; poison the session.
                        mux.session_mut(conn).fail();
                        continue;
                    };
                    let t0 = Instant::now();
                    let serviced = mux.session_mut(conn).service(action, exec);
                    report.busy += t0.elapsed();
                    match serviced {
                        Ok(Serviced::Reply(reply)) => {
                            if let Err(e) = mux.send(conn, &reply) {
                                let (i, _) = slot.active.take().unwrap();
                                failures.push((i, e.to_string()));
                            }
                        }
                        Ok(Serviced::Finished(result)) => {
                            let (i, exec) = slot.active.take().unwrap();
                            let (trace, proposer) = exec.finish(result);
                            slot.proposer = Some(proposer);
                            report.executed += 1;
                            sink.accept(i, trace);
                        }
                        Ok(Serviced::Connected(_)) => {
                            unreachable!("handshakes completed at pool connect")
                        }
                        Err(e) => {
                            let (i, _) = slot.active.take().unwrap();
                            failures.push((i, e.to_string()));
                        }
                    }
                }
                MuxEvent::ConnFailed { conn, error } => {
                    if let Some((i, _)) = slots[conn].active.take() {
                        failures.push((i, error.to_string()));
                    }
                }
            }
        }

        if drained && slots.iter().all(|s| s.active.is_none()) {
            break;
        }
        if !progress {
            std::thread::sleep(IDLE_BACKOFF);
        }
    }

    let sessions =
        slots.iter().map(|s| s.global).zip(mux.into_parts()).map(|(g, part)| (g, part)).collect();
    WorkerOutcome { report, failures, sessions }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::RuntimeConfig;
    use crate::pool::SimulatorPool;
    use crate::sink::{CollectSink, CountingSink};
    use etalumis_core::{FnProgram, SimCtx, SimCtxExt, Trace};
    use etalumis_distributions::Distribution;
    use etalumis_ppx::{
        BlockingMux, FragmentingEndpoint, InProcMuxEndpoint, InProcTransport, RemoteModel,
        SimulatorServer,
    };

    fn test_model() -> FnProgram<impl FnMut(&mut dyn SimCtx) -> Value> {
        FnProgram::new("oversub_model", |ctx: &mut dyn SimCtx| {
            let mu = ctx.sample_f64(&Distribution::Normal { mean: 0.0, std: 1.0 }, "mu");
            let k =
                ctx.sample_i64(&Distribution::Categorical { probs: vec![0.5, 0.3, 0.2] }, "branch");
            for j in 0..=k {
                let _ = ctx
                    .sample_f64(&Distribution::Normal { mean: mu, std: 1.0 + j as f64 }, "noise");
            }
            ctx.observe(&Distribution::Normal { mean: mu, std: 0.5 }, "y");
            ctx.tag("branch_tag", Value::Int(k));
            Value::Real(mu)
        })
    }

    fn spawn_inproc_server() -> InProcMuxEndpoint {
        let (ep, sim_side) = InProcMuxEndpoint::pair();
        std::thread::spawn(move || {
            let mut server = SimulatorServer::new("rt-mux", test_model());
            let mut t = sim_side;
            let _ = server.serve(&mut t);
        });
        ep
    }

    fn spawn_fragmenting_server(seed: u64) -> FragmentingEndpoint {
        let (ep, sim_side) = FragmentingEndpoint::pair(seed, 5);
        std::thread::spawn(move || {
            let mut server = SimulatorServer::new("rt-mux", test_model());
            let mut t = BlockingMux(sim_side);
            let _ = server.serve(&mut t);
        });
        ep
    }

    /// Reference: the blocking path over one remote connection.
    fn blocking_reference(n: usize, seed: u64) -> Vec<Trace> {
        let mut pool = SimulatorPool::connect_ppx(1, |_| {
            let (controller_side, sim_side) = InProcTransport::pair();
            std::thread::spawn(move || {
                let mut server = SimulatorServer::new("rt-mux", test_model());
                let mut t = sim_side;
                let _ = server.serve(&mut t);
            });
            RemoteModel::connect(controller_side, "etalumis-rs")
        })
        .unwrap();
        let runner = BatchRunner::new(RuntimeConfig { workers: 1, stealing: true });
        let sink = CollectSink::new(n);
        let observes = ObserveMap::new();
        let stats = runner.run_prior(&mut pool, &observes, n, seed, &sink);
        assert!(stats.failures.is_empty());
        sink.into_traces()
    }

    fn assert_traces_bit_identical(a: &[Trace], b: &[Trace], label: &str) {
        assert_eq!(a.len(), b.len(), "{label}: trace count");
        for (idx, (x, y)) in a.iter().zip(b).enumerate() {
            assert_eq!(x.entries.len(), y.entries.len(), "{label}: entries of trace {idx}");
            for (ex, ey) in x.entries.iter().zip(&y.entries) {
                assert_eq!(ex.address, ey.address, "{label}: address in trace {idx}");
                assert_eq!(ex.value, ey.value, "{label}: value in trace {idx}");
                assert_eq!(ex.log_prob.to_bits(), ey.log_prob.to_bits(), "{label}: trace {idx}");
                assert_eq!(ex.log_q.to_bits(), ey.log_q.to_bits(), "{label}: trace {idx}");
            }
            assert_eq!(x.result, y.result, "{label}: result of trace {idx}");
            assert_eq!(x.tags, y.tags, "{label}: tags of trace {idx}");
            assert_eq!(x.log_prior.to_bits(), y.log_prior.to_bits(), "{label}: trace {idx}");
            assert_eq!(
                x.log_likelihood.to_bits(),
                y.log_likelihood.to_bits(),
                "{label}: trace {idx}"
            );
        }
    }

    #[test]
    fn single_reactor_thread_drives_eight_sessions_bit_identical_to_blocking() {
        let n = 48;
        let seed = 2024;
        let reference = blocking_reference(n, seed);

        let mut pool = MuxSimulatorPool::connect(8, "etalumis-rs", |_| {
            Ok(Box::new(spawn_inproc_server()) as Box<dyn MuxEndpoint>)
        })
        .unwrap();
        assert_eq!(pool.len(), 8);
        assert_eq!(pool.model_name(), "oversub_model");
        // One worker thread, eight concurrent sessions.
        let runner = BatchRunner::new(RuntimeConfig { workers: 1, stealing: true });
        let sink = CollectSink::new(n);
        let observes = ObserveMap::new();
        let stats = runner.run_mux_prior(&mut pool, &observes, n, seed, &sink);
        assert_eq!(stats.total_executed(), n);
        assert!(stats.failures.is_empty(), "failures: {:?}", stats.failures);
        assert_eq!(stats.per_worker.len(), 1);
        assert_eq!(pool.live(), 8, "sessions must survive the batch");
        assert_traces_bit_identical(&sink.into_traces(), &reference, "mux 1x8");
    }

    #[test]
    fn oversubscription_is_invariant_to_workers_sessions_and_fragmentation() {
        let n = 30;
        let seed = 777;
        let reference = blocking_reference(n, seed);
        // Fragmented transports: frames arrive split at pseudo-random byte
        // boundaries, interleaved across concurrent sessions.
        for (k, m) in [(2usize, 1usize), (4, 2), (6, 3)] {
            let mut pool = MuxSimulatorPool::connect(k, "etalumis-rs", |i| {
                Ok(Box::new(spawn_fragmenting_server(seed ^ (i as u64) << 3))
                    as Box<dyn MuxEndpoint>)
            })
            .unwrap();
            let runner = BatchRunner::new(RuntimeConfig { workers: m, stealing: true });
            let sink = CollectSink::new(n);
            let observes = ObserveMap::new();
            let stats = runner.run_mux_prior(&mut pool, &observes, n, seed, &sink);
            assert_eq!(stats.total_executed(), n, "K={k} M={m}");
            assert!(stats.failures.is_empty(), "K={k} M={m}: {:?}", stats.failures);
            assert_traces_bit_identical(&sink.into_traces(), &reference, &format!("K={k} M={m}"));
        }
    }

    #[test]
    fn pool_sessions_are_reusable_across_batches() {
        let mut pool = MuxSimulatorPool::connect(3, "etalumis-rs", |_| {
            Ok(Box::new(spawn_inproc_server()) as Box<dyn MuxEndpoint>)
        })
        .unwrap();
        let runner = BatchRunner::new(RuntimeConfig { workers: 2, stealing: true });
        let observes = ObserveMap::new();
        for seed in [1u64, 2, 3] {
            let sink = CountingSink::default();
            let stats = runner.run_mux_prior(&mut pool, &observes, 12, seed, &sink);
            assert_eq!(stats.total_executed(), 12, "batch with seed {seed}");
            assert_eq!(sink.count(), 12);
            assert_eq!(pool.live(), 3);
        }
    }

    /// An endpoint that dies after a fixed number of delivered frames.
    struct FailAfter {
        inner: InProcMuxEndpoint,
        frames_left: usize,
    }

    impl MuxEndpoint for FailAfter {
        fn poll_frame(&mut self) -> Result<Option<Vec<u8>>, PpxError> {
            if self.frames_left == 0 {
                return Err(PpxError::Disconnected);
            }
            let f = self.inner.poll_frame()?;
            if f.is_some() {
                self.frames_left -= 1;
            }
            Ok(f)
        }

        fn send_frame(&mut self, payload: Vec<u8>) -> Result<(), PpxError> {
            self.inner.send_frame(payload)
        }

        fn flush(&mut self) -> Result<bool, PpxError> {
            self.inner.flush()
        }
    }

    #[test]
    fn mid_batch_session_death_is_recorded_and_skipped() {
        let n = 20;
        // Session 0 dies after a handful of frames; session 1 is healthy.
        let mut pool = MuxSimulatorPool::connect(2, "etalumis-rs", |i| {
            let inner = spawn_inproc_server();
            let ep: Box<dyn MuxEndpoint> = if i == 0 {
                Box::new(FailAfter { inner, frames_left: 9 })
            } else {
                Box::new(inner)
            };
            Ok(ep)
        })
        .unwrap();
        let runner = BatchRunner::new(RuntimeConfig { workers: 1, stealing: true });
        let sink = CountingSink::default();
        let observes = ObserveMap::new();
        let stats = runner.run_mux_prior(&mut pool, &observes, n, 5, &sink);
        assert!(!stats.failures.is_empty(), "the dying session must fail at least one trace");
        assert_eq!(
            stats.total_executed() + stats.failures.len(),
            n,
            "every index is either delivered or recorded as failed: {stats:?}"
        );
        assert_eq!(sink.count(), stats.total_executed());
        assert_eq!(pool.live(), 1, "only the healthy session survives");
    }
}
