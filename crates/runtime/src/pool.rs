//! Pools of probabilistic-program instances, one per worker.
//!
//! The paper's controller drives many simulator executions concurrently —
//! local re-entrant models and, through PPX, whole fleets of out-of-process
//! simulators (§4.1; the predecessor work ran Sherpa workers behind ZeroMQ
//! the same way). A [`SimulatorPool`] is that fleet from the runtime's point
//! of view: N independent [`ProbProgram`] instances, each owned exclusively
//! by one worker thread for the duration of a batch, so no execution ever
//! waits on another's simulator.

use etalumis_core::{BoxedProgram, ProbProgram};
use etalumis_ppx::{RemoteModel, Transport};
use std::io;

/// A fixed set of program instances multiplexed by the batch runner.
pub struct SimulatorPool {
    programs: Vec<BoxedProgram>,
}

impl SimulatorPool {
    /// Pool over pre-built program instances (at least one).
    pub fn from_programs(programs: Vec<BoxedProgram>) -> Self {
        assert!(!programs.is_empty(), "simulator pool needs at least one program");
        Self { programs }
    }

    /// Build `n` instances from a factory (`factory(worker_index)`).
    pub fn from_factory<P, F>(n: usize, factory: F) -> Self
    where
        P: ProbProgram + Send + 'static,
        F: Fn(usize) -> P,
    {
        let n = n.max(1);
        Self::from_programs((0..n).map(|w| Box::new(factory(w)) as BoxedProgram).collect())
    }

    /// Connect `n` PPX remote simulators (`connect(worker_index)` performs
    /// the handshake, e.g. over TCP or an in-process channel pair). Each
    /// connection is then driven exactly like a local program — the paper's
    /// dynamic load balancing over out-of-process simulator workers.
    pub fn connect_ppx<T, F>(n: usize, mut connect: F) -> io::Result<Self>
    where
        T: Transport + 'static,
        F: FnMut(usize) -> io::Result<RemoteModel<T>>,
    {
        let n = n.max(1);
        let mut programs: Vec<BoxedProgram> = Vec::with_capacity(n);
        for w in 0..n {
            programs.push(Box::new(connect(w)?));
        }
        Ok(Self::from_programs(programs))
    }

    /// Number of pooled instances (= the worker count a batch run uses).
    pub fn len(&self) -> usize {
        self.programs.len()
    }

    /// True when the pool holds no programs (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.programs.is_empty()
    }

    /// Exclusive access to every instance, for handing one to each worker.
    pub(crate) fn programs_mut(&mut self) -> &mut [BoxedProgram] {
        &mut self.programs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etalumis_core::{Executor, FnProgram, SimCtx, SimCtxExt};
    use etalumis_distributions::{Distribution, Value};

    #[test]
    fn factory_builds_worker_indexed_programs() {
        let mut pool = SimulatorPool::from_factory(3, |w| {
            FnProgram::new(format!("m{w}"), move |ctx: &mut dyn SimCtx| {
                Value::Real(ctx.sample_f64(&Distribution::Normal { mean: 0.0, std: 1.0 }, "x"))
            })
        });
        assert_eq!(pool.len(), 3);
        let names: Vec<String> = pool.programs_mut().iter().map(|p| p.name().to_string()).collect();
        assert_eq!(names, ["m0", "m1", "m2"]);
        // Every pooled instance runs independently.
        for p in pool.programs_mut() {
            let t = Executor::sample_prior(p, 7);
            assert_eq!(t.num_controlled(), 1);
        }
    }
}
