//! Checkpoint/resume for long batch runs.
//!
//! The paper's headline datasets take hours across hundreds of nodes
//! (§4.4); a run that dies at trace 14,999,000 of 15M must not start over.
//! This module makes sharded dataset generation restartable:
//!
//! * [`CheckpointSink`] — a [`TraceSink`] that commits completed traces to
//!   per-partition shard journals **in batch-index order** and periodically
//!   writes a [`Checkpoint`] manifest (atomically, via temp-file rename).
//! * [`Checkpoint`] — the manifest: batch identity (`n`, `seed`, shard
//!   config), the contiguous committed watermark, permanently failed
//!   indices, and each partition's [`WriterProgress`].
//! * [`BatchRunner::resume_from`] — run only the indices a manifest says
//!   are still owed.
//!
//! The invariant the whole design leans on: trace `i` is a pure function of
//! `(program, seed, i)`, so a killed-and-resumed run re-executes exactly
//! the uncommitted indices and produces shard files **byte-identical** to
//! an uninterrupted run. Commit order is batch-index order (not completion
//! order), which is what makes the shard bytes deterministic in the first
//! place — the same order `ordered` dataset generation writes.
//!
//! Crash-consistency protocol, in write order:
//!
//! 1. records append to per-partition journals (`*.partial`) as the
//!    watermark passes them;
//! 2. full shards are written to a temp file and renamed into place
//!    (`ShardWriter::finish`), never truncated mid-write;
//! 3. the manifest is written to `checkpoint.etck.tmp`, fsynced, renamed;
//! 4. only *then* are journals superseded by the manifest deleted.
//!
//! A crash between any two steps resumes cleanly: the manifest always
//! references journals/shards that exist, and journal bytes past the
//! manifest's watermark are truncated away on resume (the re-run rewrites
//! them identically).

use crate::batch::BatchRunner;
use crate::sink::{ShardedTraceSink, TraceSink};
use etalumis_core::Trace;
use etalumis_data::{
    atomic_save, decode_record, encode_record, remove_stale_rolls, Reader, RollingShardWriter,
    TraceRecord, WriterProgress,
};
use etalumis_telemetry::Telemetry;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fs::File;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// File name of the checkpoint manifest inside a dataset directory (the
/// name is defined in `etalumis-data` so the merge layer can refuse
/// unfinished rank outputs).
pub const MANIFEST_NAME: &str = etalumis_data::CHECKPOINT_MANIFEST_NAME;

/// File name of the healing pass's repair journal inside a dataset
/// directory (see [`CheckpointSink::begin_repair`]).
pub const REPAIR_JOURNAL_NAME: &str = "repair.partial";

const MANIFEST_MAGIC: &[u8; 4] = b"ETCK";
const MANIFEST_VERSION: u32 = 2;

/// Knobs for checkpointed runs.
#[derive(Clone, Copy, Debug)]
pub struct CheckpointConfig {
    /// Commit a manifest every `interval` committed traces (a manifest is
    /// also forced whenever a shard rolls, so journal deletion stays behind
    /// the manifest that supersedes it).
    pub interval: usize,
}

impl Default for CheckpointConfig {
    fn default() -> Self {
        Self { interval: 1000 }
    }
}

/// The durable state of a checkpointed batch run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Checkpoint {
    /// Batch size the run was started with.
    pub n: u64,
    /// Batch seed (trace `i` runs under `mix_seed(seed, base + i)`).
    pub seed: u64,
    /// First *global* index of the slice this run owns (0 for a
    /// single-process run over the whole batch). Part of the manifest's
    /// identity: two slices of equal length but different placement hold
    /// different records, so resuming one as the other must be refused.
    pub base: u64,
    /// Partition count of the sharded sink.
    pub partitions: u32,
    /// Records per shard before rolling.
    pub traces_per_shard: u64,
    /// Whether records are pruned to the training layout.
    pub pruned: bool,
    /// Every index `< watermark` is durably committed (or recorded failed).
    pub watermark: u64,
    /// Indices whose retry budget ran out; they stay failed across resumes
    /// and surface in the final run report.
    pub failed: Vec<u64>,
    /// Per-partition writer progress, index = partition.
    pub parts: Vec<WriterProgress>,
}

impl Checkpoint {
    /// The indices a resumed run still owes: `watermark..n`.
    pub fn remaining(&self) -> Vec<usize> {
        (self.watermark as usize..self.n as usize).collect()
    }

    /// Serialize the manifest.
    pub fn encode(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(64 + 8 * self.failed.len() + 24 * self.parts.len());
        b.extend_from_slice(MANIFEST_MAGIC);
        b.extend_from_slice(&MANIFEST_VERSION.to_le_bytes());
        b.extend_from_slice(&self.n.to_le_bytes());
        b.extend_from_slice(&self.seed.to_le_bytes());
        b.extend_from_slice(&self.base.to_le_bytes());
        b.extend_from_slice(&self.partitions.to_le_bytes());
        b.extend_from_slice(&self.traces_per_shard.to_le_bytes());
        b.push(self.pruned as u8);
        b.extend_from_slice(&self.watermark.to_le_bytes());
        b.extend_from_slice(&(self.failed.len() as u64).to_le_bytes());
        for f in &self.failed {
            b.extend_from_slice(&f.to_le_bytes());
        }
        b.extend_from_slice(&(self.parts.len() as u32).to_le_bytes());
        for p in &self.parts {
            b.extend_from_slice(&(p.finished as u64).to_le_bytes());
            b.extend_from_slice(&(p.partial_records as u64).to_le_bytes());
            b.extend_from_slice(&p.partial_bytes.to_le_bytes());
        }
        b
    }

    /// Deserialize a manifest (strict: bad magic/version/truncation error).
    pub fn decode(buf: &[u8]) -> io::Result<Self> {
        fn bad(msg: &str) -> io::Error {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("corrupt checkpoint manifest: {msg}"),
            )
        }
        let r = &mut Reader::new(buf);
        let ctx = |_| bad("truncated");
        if r.take(4).map_err(ctx)? != MANIFEST_MAGIC {
            return Err(bad("bad magic"));
        }
        if r.u32().map_err(ctx)? != MANIFEST_VERSION {
            return Err(bad("unsupported version"));
        }
        let n = r.u64().map_err(ctx)?;
        let seed = r.u64().map_err(ctx)?;
        let base = r.u64().map_err(ctx)?;
        let partitions = r.u32().map_err(ctx)?;
        let traces_per_shard = r.u64().map_err(ctx)?;
        let pruned = r.u8().map_err(ctx)? != 0;
        let watermark = r.u64().map_err(ctx)?;
        let n_failed = r.u64().map_err(ctx)? as usize;
        if n_failed > buf.len() / 8 {
            return Err(bad("failed-list length exceeds the manifest"));
        }
        let mut failed = Vec::with_capacity(n_failed);
        for _ in 0..n_failed {
            failed.push(r.u64().map_err(ctx)?);
        }
        let n_parts = r.u32().map_err(ctx)? as usize;
        if n_parts > buf.len() / 24 {
            return Err(bad("partition count exceeds the manifest"));
        }
        let mut parts = Vec::with_capacity(n_parts);
        for _ in 0..n_parts {
            parts.push(WriterProgress {
                finished: r.u64().map_err(ctx)? as usize,
                partial_records: r.u64().map_err(ctx)? as usize,
                partial_bytes: r.u64().map_err(ctx)?,
            });
        }
        Ok(Self { n, seed, base, partitions, traces_per_shard, pruned, watermark, failed, parts })
    }

    /// Load the manifest from a dataset directory (`None` if absent — a
    /// fresh run).
    pub fn load(dir: &Path) -> io::Result<Option<Self>> {
        let path = dir.join(MANIFEST_NAME);
        let mut buf = Vec::new();
        match File::open(&path) {
            Ok(mut f) => {
                f.read_to_end(&mut buf)?;
                Self::decode(&buf).map(Some)
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Atomically write the manifest into `dir`: temp file, fsync, rename.
    /// A crash at any point leaves either the previous manifest or this one
    /// — never a torn file.
    pub fn save(&self, dir: &Path) -> io::Result<()> {
        atomic_save(dir, MANIFEST_NAME, &self.encode())
    }
}

/// Shard-layout parameters a [`CheckpointSink`] needs (mirrors the relevant
/// fields of `DatasetGenConfig`).
#[derive(Clone, Copy, Debug)]
pub struct ShardLayout {
    /// Batch size (slice length for a distributed rank).
    pub n: usize,
    /// Batch seed.
    pub seed: u64,
    /// First global index of the slice (0 for whole-batch runs).
    pub base: usize,
    /// Trace-type hash partitions.
    pub partitions: usize,
    /// Records per shard before rolling.
    pub traces_per_shard: usize,
    /// Prune records to the training layout.
    pub pruned: bool,
}

struct CkState {
    watermark: usize,
    /// Completed (Some) or permanently failed (None) indices beyond the
    /// watermark, waiting for the prefix to close.
    pending: BTreeMap<usize, Option<TraceRecord>>,
    writers: Vec<RollingShardWriter>,
    failed: Vec<u64>,
    since_manifest: usize,
    /// Finished-shard counts at the last manifest write (to force a
    /// manifest after any roll).
    finished_counts: Vec<usize>,
    /// Below-watermark indices healed by the repair pass, with the records
    /// their re-execution produced (written out as `repair_*` shards at
    /// finalize). Keyed by index so replay + re-run cannot double-insert.
    repaired: BTreeMap<u64, TraceRecord>,
    /// The open repair journal (`repair.partial`), present once a healing
    /// pass has begun.
    repair_journal: Option<File>,
    /// First I/O error; everything after it is dropped and the error
    /// surfaces at finalize.
    error: Option<io::Error>,
}

/// A [`TraceSink`] that makes a sharded batch run restartable.
///
/// Completed traces are held in a reorder buffer until every lower index
/// has arrived, then committed to their partition's journal in batch-index
/// order; every [`CheckpointConfig::interval`] commits (and after every
/// shard roll) a [`Checkpoint`] manifest is atomically written. Kill the
/// process at any instant, call [`CheckpointSink::resume`], rerun the
/// remaining indices, and the final shard files are byte-identical to an
/// uninterrupted run's.
pub struct CheckpointSink {
    dir: PathBuf,
    layout: ShardLayout,
    interval: usize,
    /// Reorder-buffer backpressure: a worker delivering an index more than
    /// `window` past the watermark waits (briefly, bounded) for the prefix
    /// to catch up. This bounds checkpoint lag and the buffer's memory —
    /// without it, staggered worker start-up lets fast workers race
    /// thousands of indices ahead of the commit watermark.
    window: usize,
    state: Mutex<CkState>,
    tel: Telemetry,
}

impl CheckpointSink {
    /// A sink for a fresh run.
    pub fn new(dir: impl AsRef<Path>, layout: ShardLayout, ckpt: &CheckpointConfig) -> Self {
        let partitions = layout.partitions.max(1);
        let writers = (0..partitions)
            .map(|p| {
                RollingShardWriter::new(
                    dir.as_ref(),
                    ShardedTraceSink::partition_prefix(p),
                    layout.traces_per_shard,
                    true,
                )
                .durable()
            })
            .collect();
        Self {
            dir: dir.as_ref().to_path_buf(),
            layout: ShardLayout { partitions, ..layout },
            interval: ckpt.interval.max(1),
            window: ckpt.interval.max(1) * 2 + 64,
            state: Mutex::new(CkState {
                watermark: 0,
                pending: BTreeMap::new(),
                writers,
                failed: Vec::new(),
                since_manifest: 0,
                finished_counts: vec![0; partitions],
                repaired: BTreeMap::new(),
                repair_journal: None,
                error: None,
            }),
            tel: Telemetry::disabled(),
        }
    }

    /// Attach a telemetry handle. The sink emits `ckpt.commit` spans
    /// (journal fsync + manifest save latency), a `ckpt.journal_bytes`
    /// counter, a `ckpt.pending` gauge (reorder-buffer depth at each
    /// delivery), and a `ckpt.backpressure_waits` counter (bounded waits
    /// taken by workers racing ahead of the commit watermark).
    pub fn with_telemetry(mut self, tel: Telemetry) -> Self {
        self.tel = tel;
        self
    }

    /// Rebuild a sink from a loaded [`Checkpoint`] manifest (see
    /// [`Checkpoint::load`]), validating it against the run's layout; the
    /// manifest's [`Checkpoint::remaining`] is the work still owed.
    pub fn resume(
        dir: impl AsRef<Path>,
        layout: ShardLayout,
        ckpt: &CheckpointConfig,
        manifest: &Checkpoint,
    ) -> io::Result<Self> {
        let dir = dir.as_ref();
        let partitions = layout.partitions.max(1);
        if manifest.n != layout.n as u64
            || manifest.seed != layout.seed
            || manifest.base != layout.base as u64
            || manifest.partitions != partitions as u32
            || manifest.traces_per_shard != layout.traces_per_shard as u64
            || manifest.pruned != layout.pruned
        {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "checkpoint manifest does not match the requested run \
                     (manifest: n={} seed={} base={} partitions={} shard={} pruned={}; \
                     requested: n={} seed={} base={} partitions={} shard={} pruned={})",
                    manifest.n,
                    manifest.seed,
                    manifest.base,
                    manifest.partitions,
                    manifest.traces_per_shard,
                    manifest.pruned,
                    layout.n,
                    layout.seed,
                    layout.base,
                    partitions,
                    layout.traces_per_shard,
                    layout.pruned
                ),
            ));
        }
        if manifest.parts.len() != partitions {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "checkpoint manifest is internally inconsistent: partitions={} but {} \
                     per-partition progress entries",
                    manifest.partitions,
                    manifest.parts.len()
                ),
            ));
        }
        if manifest.watermark > manifest.n {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "checkpoint manifest is internally inconsistent: watermark {} exceeds n {}",
                    manifest.watermark, manifest.n
                ),
            ));
        }
        let mut writers = Vec::with_capacity(partitions);
        let mut finished_counts = Vec::with_capacity(partitions);
        for (p, progress) in manifest.parts.iter().enumerate() {
            writers.push(RollingShardWriter::resume_durable(
                dir,
                ShardedTraceSink::partition_prefix(p),
                layout.traces_per_shard,
                true,
                *progress,
            )?);
            finished_counts.push(progress.finished);
        }
        Ok(Self {
            dir: dir.to_path_buf(),
            layout: ShardLayout { partitions, ..layout },
            interval: ckpt.interval.max(1),
            window: ckpt.interval.max(1) * 2 + 64,
            state: Mutex::new(CkState {
                watermark: manifest.watermark as usize,
                pending: BTreeMap::new(),
                writers,
                failed: manifest.failed.clone(),
                since_manifest: 0,
                finished_counts,
                repaired: BTreeMap::new(),
                repair_journal: None,
                error: None,
            }),
            tel: Telemetry::disabled(),
        })
    }

    fn manifest_of(&self, state: &CkState) -> Checkpoint {
        Checkpoint {
            n: self.layout.n as u64,
            seed: self.layout.seed,
            base: self.layout.base as u64,
            partitions: self.layout.partitions as u32,
            traces_per_shard: self.layout.traces_per_shard as u64,
            pruned: self.layout.pruned,
            watermark: state.watermark as u64,
            failed: state.failed.clone(),
            parts: state.writers.iter().map(|w| w.progress()).collect(),
        }
    }

    /// Commit the closed prefix, then write a manifest if due. Any I/O error
    /// poisons the sink (first error wins, surfaced at finalize).
    fn advance(&self, state: &mut CkState) {
        if state.error.is_some() {
            return;
        }
        let mut journal_bytes = 0u64;
        let result = (|| -> io::Result<()> {
            while let Some(entry) = state.pending.remove(&state.watermark) {
                if let Some(rec) = entry {
                    let p = ShardedTraceSink::partition_of(rec.trace_type, self.layout.partitions);
                    let before = state.writers[p].progress().partial_bytes;
                    state.writers[p].push(rec)?;
                    let after = state.writers[p].progress().partial_bytes;
                    // A roll resets the journal; the post-roll residue is
                    // still bytes appended by this push.
                    journal_bytes += if after >= before { after - before } else { after };
                }
                state.watermark += 1;
                state.since_manifest += 1;
            }
            let rolled = state
                .writers
                .iter()
                .zip(&state.finished_counts)
                .any(|(w, &f)| w.progress().finished != f);
            if rolled || state.since_manifest >= self.interval {
                let commit_started = std::time::Instant::now(); // etalumis: allow(determinism, reason = "commit latency metric; telemetry only")
                                                                // The manifest must not reference journal bytes the disk
                                                                // has not acknowledged: fsync dirty journals first.
                for w in state.writers.iter_mut() {
                    w.sync_journal()?;
                }
                self.manifest_of(state).save(&self.dir)?;
                self.tel.span_record("ckpt.commit", commit_started.elapsed());
                state.since_manifest = 0;
                for (p, w) in state.writers.iter_mut().enumerate() {
                    state.finished_counts[p] = w.progress().finished;
                    // Safe only now: the freshly renamed manifest no longer
                    // references these journals.
                    for j in w.take_obsolete_journals() {
                        let _ = std::fs::remove_file(j); // etalumis: allow(reactor-blocking, reason = "durable tee contract: commit-time journal GC runs on the delivery thread by design")
                    }
                }
            }
            Ok(())
        })();
        if journal_bytes > 0 {
            self.tel.count("ckpt.journal_bytes", journal_bytes);
        }
        if let Err(e) = result {
            state.error = Some(e);
        }
    }

    /// Begin the healing pass for manifest-recorded permanent failures.
    ///
    /// Indices whose retry budget ran out *below* the commit watermark are
    /// holes the normal resume path can never fill: the watermark has
    /// passed them, so re-running `watermark..n` skips them forever, and
    /// patching them into already-committed shards would rewrite bytes the
    /// crash-consistency protocol promised were final. The healing pass
    /// re-runs them with a fresh retry budget and stages the recovered
    /// records in a **repair journal** (`repair.partial`, `u64 index |
    /// u32 len | record` appends); [`CheckpointSink::finalize`] turns the
    /// staged records into trailing `repair_*` shards via the usual atomic
    /// rename, leaving every committed shard byte-for-byte untouched.
    ///
    /// This method replays any journal a previous (crashed) healing pass
    /// left behind — already-recovered records are taken from the journal
    /// instead of being re-executed, and a torn final append is truncated
    /// away. Returns the indices still owed, i.e. the failed list minus
    /// what the journal already healed; deliver their re-runs through
    /// [`CheckpointSink::repair_sink`].
    pub fn begin_repair(&self) -> io::Result<Vec<u64>> {
        let mut state = self.state.lock();
        if state.repair_journal.is_none() {
            let path = self.dir.join(REPAIR_JOURNAL_NAME);
            let mut file = match File::options().read(true).write(true).open(&path) {
                Ok(f) => {
                    // Replay the committed prefix of a previous attempt.
                    let mut buf = Vec::new();
                    let mut f2 = &f;
                    f2.read_to_end(&mut buf)?;
                    let mut off = 0usize;
                    while buf.len() - off >= 12 {
                        let mut idx8 = [0u8; 8];
                        idx8.copy_from_slice(&buf[off..off + 8]);
                        let idx = u64::from_le_bytes(idx8);
                        let mut len4 = [0u8; 4];
                        len4.copy_from_slice(&buf[off + 8..off + 12]);
                        let len = u32::from_le_bytes(len4) as usize;
                        if buf.len() - off - 12 < len {
                            break; // torn tail: the crash interrupted this append
                        }
                        // An undecodable entry is treated exactly like a
                        // torn tail: journal appends are not fsynced
                        // (deliberately — nothing references them until
                        // finalize), so unordered data writeback after a
                        // power loss can persist a length header whose
                        // payload pages were lost. Every entry is a pure
                        // function of (seed, index), so truncating here and
                        // re-running the rest is always safe — the journal
                        // must never be able to wedge a resume.
                        let Ok(rec) = decode_record(&buf[off + 12..off + 12 + len], None) else {
                            break;
                        };
                        off += 12 + len;
                        if let Ok(pos) = state.failed.binary_search(&idx) {
                            state.failed.remove(pos);
                            state.repaired.insert(idx, rec);
                        }
                    }
                    file_truncate_to(&f, off as u64)?;
                    f
                }
                Err(e) if e.kind() == io::ErrorKind::NotFound => {
                    if state.failed.is_empty() {
                        return Ok(Vec::new()); // nothing to heal, no journal needed
                    }
                    std::fs::create_dir_all(&self.dir)?;
                    File::options().create_new(true).read(true).write(true).open(&path)?
                }
                Err(e) => return Err(e),
            };
            file.seek(SeekFrom::End(0))?;
            state.repair_journal = Some(file);
        }
        Ok(state.failed.clone())
    }

    /// A [`TraceSink`] adapter routing re-executions of failed indices into
    /// the repair path (journal append + staged record) instead of the
    /// watermark-ordered commit path. Call [`CheckpointSink::begin_repair`]
    /// first.
    pub fn repair_sink(&self) -> RepairSink<'_> {
        RepairSink { sink: self }
    }

    fn repair_accept(&self, index: usize, trace: Trace) {
        let rec = TraceRecord::from_trace(&trace, self.layout.pruned);
        let mut state = self.state.lock(); // etalumis: allow(reactor-blocking, reason = "healing passes run offline; begin_repair's truncate-under-lock never overlaps a live reactor")
        if state.error.is_some() {
            return;
        }
        let idx = index as u64;
        if state.repaired.contains_key(&idx) {
            return;
        }
        let result = (|| -> io::Result<()> {
            let Some(journal) = state.repair_journal.as_mut() else {
                return Err(io::Error::other(
                    "repair delivery before begin_repair (healing pass not started)",
                ));
            };
            let buf = encode_record(&rec, None);
            journal.write_all(&idx.to_le_bytes())?; // etalumis: allow(reactor-blocking, reason = "durable tee contract: repaired records must hit the journal before acknowledgment")
            journal.write_all(&(buf.len() as u32).to_le_bytes())?; // etalumis: allow(reactor-blocking, reason = "durable tee contract: repaired records must hit the journal before acknowledgment")
            journal.write_all(&buf)?; // etalumis: allow(reactor-blocking, reason = "durable tee contract: repaired records must hit the journal before acknowledgment")
            Ok(())
        })();
        match result {
            Ok(()) => {
                if let Ok(pos) = state.failed.binary_search(&idx) {
                    state.failed.remove(pos);
                }
                state.repaired.insert(idx, rec);
            }
            Err(e) => state.error = Some(e),
        }
    }

    /// Flush everything, write no further manifests, delete the manifest
    /// and journals, and return the final shard paths (partition order,
    /// then roll order, healed `repair_*` shards last) — the run is
    /// complete.
    pub fn finalize(self) -> io::Result<Vec<PathBuf>> {
        let state = self.state.into_inner();
        if let Some(e) = state.error {
            return Err(e);
        }
        if !state.pending.is_empty() {
            return Err(io::Error::other(format!(
                "{} trace(s) neither delivered nor failed at finalize (first: {:?})",
                state.pending.len(),
                state.pending.keys().next()
            )));
        }
        // Ordering matters for crash consistency: flush every shard while
        // keeping the journals, write the repair shards, delete the
        // manifest, and only then delete the journals it referenced. A
        // crash before the manifest removal resumes cleanly (journals
        // intact; the repair journal replays the healed records without
        // re-execution); a crash after it degrades to a fresh
        // deterministic re-run, never an unresumable state.
        let mut paths = Vec::new();
        let mut journals = Vec::new();
        for w in state.writers {
            let (shards, js) = w.finish_keeping_journals()?;
            paths.extend(shards);
            journals.extend(js);
        }
        let mut repair_kept = 0usize;
        if !state.repaired.is_empty() {
            let mut rw = RollingShardWriter::new(
                &self.dir,
                "repair",
                self.layout.traces_per_shard.max(1),
                true,
            );
            for rec in state.repaired.values() {
                rw.push(rec.clone())?;
            }
            let repair_paths = rw.finish()?;
            repair_kept = repair_paths.len();
            paths.extend(repair_paths);
        }
        // Unconditional: a crash-degraded fresh re-run stages no repairs
        // itself but can still find a previous life's repair_* shards on
        // disk — every healed record is re-committed into the part shards
        // by the re-run, so stale repair shards would be duplicates.
        remove_stale_rolls(&self.dir, "repair", repair_kept)?;
        std::fs::remove_file(self.dir.join(MANIFEST_NAME)).or_else(|e| {
            if e.kind() == io::ErrorKind::NotFound {
                Ok(())
            } else {
                Err(e)
            }
        })?;
        for j in journals {
            let _ = std::fs::remove_file(j);
        }
        drop(state.repair_journal);
        let _ = std::fs::remove_file(self.dir.join(REPAIR_JOURNAL_NAME));
        Ok(paths)
    }

    /// The failed indices recorded so far (including ones inherited from
    /// the manifest a resumed run started from, minus any the healing pass
    /// has recovered).
    pub fn failed(&self) -> Vec<u64> {
        self.state.lock().failed.clone()
    }

    /// Indices the healing pass has recovered so far.
    pub fn repaired(&self) -> usize {
        self.state.lock().repaired.len()
    }

    /// The current commit watermark (test/diagnostic hook).
    pub fn watermark(&self) -> usize {
        self.state.lock().watermark
    }
}

/// Truncate `f` to `len` bytes (free function so the borrow on the locked
/// state stays simple at the call site).
fn file_truncate_to(f: &File, len: u64) -> io::Result<()> {
    f.set_len(len)
}

/// The healing pass's [`TraceSink`]: successful re-executions of
/// permanently failed indices are staged for repair shards; re-failures
/// keep the index on the failed list. See [`CheckpointSink::begin_repair`].
pub struct RepairSink<'a> {
    sink: &'a CheckpointSink,
}

impl TraceSink for RepairSink<'_> {
    fn accept(&self, index: usize, trace: Trace) {
        self.sink.repair_accept(index, trace);
    }

    fn reject(&self, index: usize, _error: &str) {
        // Still failed: the index is already on the failed list (healing
        // only removes it on a successful re-run), nothing to record.
        let _ = index;
    }
}

impl TraceSink for CheckpointSink {
    fn accept(&self, index: usize, trace: Trace) {
        let rec = TraceRecord::from_trace(&trace, self.layout.pruned);
        // Backpressure: wait (bounded) while this index is too far past
        // the watermark. The wait can never deadlock — the worker owning
        // the watermark index pops its indices in ascending order, so it is
        // never itself waiting on a higher index — but it is capped anyway
        // so a pathologically descheduled worker only costs memory, not
        // liveness.
        let mut waits = 0u32;
        loop {
            let mut state = self.state.lock(); // etalumis: allow(reactor-blocking, reason = "begin_repair's truncate-under-lock runs only in offline healing passes, never under a live reactor")
            if index < state.watermark {
                return; // already durable (can only happen on operator error)
            }
            let far_ahead = index > state.watermark + self.window;
            if !far_ahead || state.error.is_some() || waits >= 4000 {
                // A successful delivery heals an earlier reject of the same
                // index (a resumed run re-executes manifest-failed indices
                // that sit above the watermark; if the rerun succeeds the
                // failure must not outlive it).
                if let Ok(pos) = state.failed.binary_search(&(index as u64)) {
                    state.failed.remove(pos);
                }
                state.pending.insert(index, Some(rec));
                self.tel.gauge("ckpt.pending", state.pending.len() as f64);
                self.advance(&mut state);
                if waits > 0 {
                    self.tel.count("ckpt.backpressure_waits", u64::from(waits));
                }
                return;
            }
            drop(state);
            waits += 1;
            std::thread::sleep(std::time::Duration::from_micros(50)); // etalumis: allow(reactor-blocking, reason = "bounded backpressure park, capped at 4000 waits; trades memory for liveness by design")
        }
    }

    fn reject(&self, index: usize, _error: &str) {
        let mut state = self.state.lock();
        if index < state.watermark {
            return;
        }
        state.failed.push(index as u64);
        state.failed.sort_unstable();
        state.failed.dedup();
        state.pending.insert(index, None);
        self.tel.gauge("ckpt.pending", state.pending.len() as f64);
        self.advance(&mut state);
    }
}

impl BatchRunner {
    /// Configure the runner to execute only the work a [`Checkpoint`] says
    /// is still owed (equivalent to `with_tasks(manifest.remaining())`).
    pub fn resume_from(self, manifest: &Checkpoint) -> Self {
        self.with_tasks(manifest.remaining())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_roundtrips() {
        let ck = Checkpoint {
            n: 15_000_000,
            seed: 0xDEAD_BEEF,
            base: 3_000_000,
            partitions: 4,
            traces_per_shard: 100_000,
            pruned: true,
            watermark: 14_999_000,
            failed: vec![3, 77, 1_000_000],
            parts: vec![
                WriterProgress { finished: 37, partial_records: 12, partial_bytes: 34_567 },
                WriterProgress { finished: 36, partial_records: 0, partial_bytes: 0 },
                WriterProgress { finished: 38, partial_records: 99_999, partial_bytes: 1 << 30 },
                WriterProgress { finished: 35, partial_records: 5, partial_bytes: 555 },
            ],
        };
        let bytes = ck.encode();
        assert_eq!(Checkpoint::decode(&bytes).unwrap(), ck);
        // Every truncated prefix errors instead of panicking.
        for cut in 0..bytes.len() {
            assert!(Checkpoint::decode(&bytes[..cut]).is_err(), "prefix {cut} decoded");
        }
        // Corrupt magic.
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(Checkpoint::decode(&bad).is_err());
    }

    #[test]
    fn manifest_save_load_is_atomic_and_idempotent() {
        let dir = std::env::temp_dir().join(format!("etalumis_ck_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        assert_eq!(Checkpoint::load(&dir.join("nope")).unwrap(), None);
        let ck = Checkpoint {
            n: 100,
            seed: 7,
            base: 0,
            partitions: 2,
            traces_per_shard: 10,
            pruned: true,
            watermark: 42,
            failed: vec![],
            parts: vec![WriterProgress::default(); 2],
        };
        ck.save(&dir).unwrap();
        assert_eq!(Checkpoint::load(&dir).unwrap(), Some(ck.clone()));
        // Overwrite with a later manifest; no temp file left behind.
        let later = Checkpoint { watermark: 90, ..ck };
        later.save(&dir).unwrap();
        assert_eq!(Checkpoint::load(&dir).unwrap(), Some(later));
        assert!(!dir.join(format!("{MANIFEST_NAME}.tmp")).exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn successful_rerun_heals_an_earlier_reject() {
        use etalumis_core::Executor;
        use etalumis_simulators::BranchingModel;
        let dir = std::env::temp_dir().join(format!("etalumis_ck_heal_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let layout = ShardLayout {
            n: 6,
            seed: 1,
            base: 0,
            partitions: 1,
            traces_per_shard: 10,
            pruned: true,
        };
        let sink = CheckpointSink::new(&dir, layout, &CheckpointConfig::default());
        let mut m = BranchingModel::standard();
        // Index 5 fails while the prefix is still open (watermark 0), then a
        // retry (or a resumed run) delivers it successfully.
        sink.reject(5, "simulator died");
        assert_eq!(sink.failed(), vec![5]);
        sink.accept(5, Executor::sample_prior(&mut m, 5));
        assert!(sink.failed().is_empty(), "a successful rerun must clear the failure");
        for i in 0..5 {
            sink.accept(i, Executor::sample_prior(&mut m, i as u64));
        }
        assert_eq!(sink.watermark(), 6);
        let paths = sink.finalize().unwrap();
        assert_eq!(paths.len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_rejects_mismatched_layout() {
        let dir = std::env::temp_dir().join(format!("etalumis_ck_mm_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let layout = ShardLayout {
            n: 50,
            seed: 3,
            base: 0,
            partitions: 2,
            traces_per_shard: 10,
            pruned: true,
        };
        let sink = CheckpointSink::new(&dir, layout, &CheckpointConfig::default());
        // Force a manifest to disk.
        sink.manifest_of(&sink.state.lock()).save(&dir).unwrap();
        let wrong_seed = ShardLayout { seed: 4, ..layout };
        let manifest = Checkpoint::load(&dir).unwrap().unwrap();
        let err = CheckpointSink::resume(&dir, wrong_seed, &CheckpointConfig::default(), &manifest)
            .map(|_| ())
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        // An equal-length slice at a different global placement is a
        // different run: base is part of the identity.
        let wrong_base = ShardLayout { base: 1, ..layout };
        let err = CheckpointSink::resume(&dir, wrong_base, &CheckpointConfig::default(), &manifest)
            .map(|_| ())
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        // Internally inconsistent manifests are rejected too: a watermark
        // past n would silently truncate the dataset if honored.
        let over = Checkpoint { watermark: layout.n as u64 + 1, ..manifest.clone() };
        let err = CheckpointSink::resume(&dir, layout, &CheckpointConfig::default(), &over)
            .map(|_| ())
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
