//! Flatten BENCH_*.json snapshots into dotted-path → number maps for the
//! `perf_gate` regression check.
//!
//! The repo's snapshots are hand-rolled JSON with nested objects of numbers
//! (plus a few strings/bools that the gate ignores). This is a minimal
//! recursive parser — no external JSON dependency — that extracts every
//! numeric leaf under a dotted key path, e.g.
//! `gemm.gflops.avx2_gflops` or `phases.forward_secs`.

use std::collections::BTreeMap;

/// Parse a JSON document and return all numeric leaves keyed by dotted path.
/// Array elements get their index as a path segment. Returns `None` on
/// malformed input.
pub fn flatten_numbers(text: &str) -> Option<BTreeMap<String, f64>> {
    let mut out = BTreeMap::new();
    let mut p = Parser { s: text.as_bytes(), i: 0 };
    p.skip_ws();
    p.value("", &mut out)?;
    p.skip_ws();
    if p.i != p.s.len() {
        return None;
    }
    Some(out)
}

struct Parser<'a> {
    s: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.i < self.s.len() && self.s[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.s.get(self.i).copied()
    }

    fn eat(&mut self, b: u8) -> Option<()> {
        if self.peek() == Some(b) {
            self.i += 1;
            Some(())
        } else {
            None
        }
    }

    fn value(&mut self, path: &str, out: &mut BTreeMap<String, f64>) -> Option<()> {
        self.skip_ws();
        match self.peek()? {
            b'{' => self.object(path, out),
            b'[' => self.array(path, out),
            b'"' => {
                self.string()?;
                Some(())
            }
            b't' => self.literal(b"true"),
            b'f' => self.literal(b"false"),
            b'n' => self.literal(b"null"),
            _ => {
                let v = self.number()?;
                if !path.is_empty() {
                    out.insert(path.to_string(), v);
                }
                Some(())
            }
        }
    }

    fn object(&mut self, path: &str, out: &mut BTreeMap<String, f64>) -> Option<()> {
        self.eat(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Some(());
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            let child = if path.is_empty() { key } else { format!("{path}.{key}") };
            self.value(&child, out)?;
            self.skip_ws();
            match self.peek()? {
                b',' => self.i += 1,
                b'}' => {
                    self.i += 1;
                    return Some(());
                }
                _ => return None,
            }
        }
    }

    fn array(&mut self, path: &str, out: &mut BTreeMap<String, f64>) -> Option<()> {
        self.eat(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Some(());
        }
        let mut idx = 0usize;
        loop {
            let child = format!("{path}.{idx}");
            self.value(&child, out)?;
            self.skip_ws();
            match self.peek()? {
                b',' => {
                    self.i += 1;
                    idx += 1;
                }
                b']' => {
                    self.i += 1;
                    return Some(());
                }
                _ => return None,
            }
        }
    }

    fn string(&mut self) -> Option<String> {
        self.eat(b'"')?;
        let mut v = String::new();
        loop {
            let c = self.peek()?;
            self.i += 1;
            match c {
                b'"' => return Some(v),
                b'\\' => {
                    let e = self.peek()?;
                    self.i += 1;
                    v.push(match e {
                        b'n' => '\n',
                        b't' => '\t',
                        b'r' => '\r',
                        c => c as char,
                    });
                }
                c => v.push(c as char),
            }
        }
    }

    fn literal(&mut self, lit: &[u8]) -> Option<()> {
        if self.s[self.i..].starts_with(lit) {
            self.i += lit.len();
            Some(())
        } else {
            None
        }
    }

    fn number(&mut self) -> Option<f64> {
        let start = self.i;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.i += 1;
            } else {
                break;
            }
        }
        std::str::from_utf8(&self.s[start..self.i]).ok()?.parse().ok()
    }
}

/// True when a flattened key names a higher-is-better throughput metric the
/// gate should compare (steps/traces per second, GFLOP/s).
pub fn is_throughput_key(key: &str) -> bool {
    key.ends_with("per_sec") || key.ends_with("gflops") || key.contains("_gflops")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flattens_nested_snapshot() {
        let doc = r#"{
            "bench": "train", "quick": true, "steps_per_sec": 12.5,
            "phases": {"forward_secs": 0.31, "backward_secs": 5e-1},
            "dims": [20, 35, 35], "empty": {}, "nothing": null
        }"#;
        let m = flatten_numbers(doc).unwrap();
        assert_eq!(m["steps_per_sec"], 12.5);
        assert_eq!(m["phases.forward_secs"], 0.31);
        assert_eq!(m["phases.backward_secs"], 0.5);
        assert_eq!(m["dims.1"], 35.0);
        assert!(!m.contains_key("bench"));
        assert_eq!(m.len(), 6);
    }

    #[test]
    fn rejects_malformed() {
        assert!(flatten_numbers("{\"a\": }").is_none());
        assert!(flatten_numbers("{\"a\": 1").is_none());
        assert!(flatten_numbers("{} trailing").is_none());
    }

    #[test]
    fn throughput_keys() {
        assert!(is_throughput_key("steps_per_sec"));
        assert!(is_throughput_key("gemm.gflops.avx2_gflops"));
        assert!(!is_throughput_key("phases.forward_secs"));
        assert!(!is_throughput_key("wall_secs"));
    }
}
