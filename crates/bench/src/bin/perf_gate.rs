//! CI perf-regression gate: compare fresh BENCH_*.json snapshots against
//! the committed baselines in `ci/baselines/` and fail on large drops.
//!
//! Every throughput metric (keys ending in `per_sec` or `gflops`, flattened
//! by [`etalumis_bench::perf`]) must stay above `baseline / 2` — a deliberate
//! 2× margin so CI-runner jitter never trips the gate but a real regression
//! in the kernel/training spine does. Non-throughput numbers (wall seconds,
//! shape metadata) are reported but never gated.
//!
//! ```text
//! cargo run -p etalumis-bench --release --bin perf_gate            # check
//! cargo run -p etalumis-bench --release --bin perf_gate -- --update-baselines
//! ```
//!
//! `--update-baselines` copies the fresh snapshots over the committed
//! baselines; run it (and commit the result) whenever a PR intentionally
//! changes the perf trajectory. Snapshots missing from the workspace root
//! are skipped with a note — run the corresponding bench first (CI runs the
//! `--quick` benches before this gate; compare quick to quick).

use etalumis_bench::perf::{flatten_numbers, is_throughput_key};
use std::path::PathBuf;

/// Fresh snapshot must reach at least this fraction of the baseline.
const MIN_RATIO: f64 = 0.5;

const SNAPSHOTS: &[&str] =
    &["BENCH_runtime.json", "BENCH_train.json", "BENCH_kernels.json", "BENCH_streaming.json"];

fn main() {
    let update = std::env::args().any(|a| a == "--update-baselines");
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let baseline_dir = root.join("ci/baselines");
    let mut failures = Vec::new();
    let mut compared = 0usize;
    for name in SNAPSHOTS {
        let fresh_path = root.join(name);
        let Ok(fresh_text) = std::fs::read_to_string(&fresh_path) else {
            println!("perf_gate: {name} not present in workspace root, skipping (run its bench)");
            continue;
        };
        if update {
            std::fs::create_dir_all(&baseline_dir).expect("create ci/baselines");
            std::fs::write(baseline_dir.join(name), &fresh_text).expect("write baseline");
            println!("perf_gate: baseline updated <- {name}");
            continue;
        }
        let Some(fresh) = flatten_numbers(&fresh_text) else {
            failures.push(format!("{name}: fresh snapshot is not parseable JSON"));
            continue;
        };
        let base_path = baseline_dir.join(name);
        let Ok(base_text) = std::fs::read_to_string(&base_path) else {
            println!("perf_gate: no committed baseline for {name}, skipping");
            println!("           (seed it with --update-baselines and commit ci/baselines/)");
            continue;
        };
        let Some(base) = flatten_numbers(&base_text) else {
            failures.push(format!("{name}: committed baseline is not parseable JSON"));
            continue;
        };
        for (key, &b) in base.iter().filter(|(k, _)| is_throughput_key(k)) {
            let Some(&f) = fresh.get(key) else {
                failures.push(format!("{name}: throughput key {key} missing from fresh snapshot"));
                continue;
            };
            compared += 1;
            let ratio = if b > 0.0 { f / b } else { 1.0 };
            let verdict = if ratio < MIN_RATIO { "FAIL" } else { "ok" };
            println!("  [{verdict}] {name} {key}: fresh {f:.3} vs baseline {b:.3} ({ratio:.2}x)");
            if ratio < MIN_RATIO {
                failures.push(format!(
                    "{name}: {key} regressed {ratio:.2}x (fresh {f:.3}, baseline {b:.3}, \
                     floor {MIN_RATIO}x)"
                ));
            }
        }
    }
    if update {
        return;
    }
    if failures.is_empty() {
        println!("perf_gate: {compared} throughput metrics within bounds");
    } else {
        eprintln!("perf_gate: {} failure(s):", failures.len());
        for f in &failures {
            eprintln!("  {f}");
        }
        eprintln!("If the change is an intentional perf trade-off, refresh the baselines with");
        eprintln!("  cargo run -p etalumis-bench --release --bin perf_gate -- --update-baselines");
        eprintln!("and commit ci/baselines/.");
        std::process::exit(1);
    }
}
