//! Render a telemetry JSONL event log as a human-readable run report.
//!
//! Reads the `events.jsonl` written by
//! [`Collector::write_jsonl`](etalumis_telemetry::Collector::write_jsonl)
//! and prints (a) a per-worker timeline — each worker's busy fraction over
//! the run binned into a fixed-width ASCII strip, with its span/steal
//! counts — and (b) a phase breakdown: every span name's count, total,
//! percentiles and share of wall time, plus counter sums and gauge ranges.
//!
//! ```text
//! cargo run -p etalumis-bench --bin run_report -- events.jsonl
//! ```

use std::collections::BTreeMap;

const TIMELINE_COLS: usize = 64;

/// One parsed JSONL event line (the flat shape `event_json` emits).
struct Line {
    kind: String,
    name: String,
    /// `u32::MAX` = unattributed (`"worker":null`).
    worker: u32,
    start_us: u64,
    dur_us: u64,
    parent: u64,
    delta: u64,
    value: f64,
}

/// Parse one flat JSON object of string / number / null values. Returns
/// key → raw token (strings unescaped). Tolerates any key order.
fn parse_flat(line: &str) -> Option<BTreeMap<String, String>> {
    let mut out = BTreeMap::new();
    let mut chars = line.trim().char_indices().peekable();
    let s = line.trim();
    if chars.next()?.1 != '{' {
        return None;
    }
    loop {
        // Skip separators until a key, or finish on '}'.
        let (mut i, mut c) = chars.next()?;
        while c == ',' || c.is_whitespace() {
            (i, c) = chars.next()?;
        }
        if c == '}' {
            return Some(out);
        }
        if c != '"' {
            return None;
        }
        let key_start = i + 1;
        let mut key_end = key_start;
        for (j, c) in chars.by_ref() {
            if c == '"' {
                key_end = j;
                break;
            }
        }
        let key = &s[key_start..key_end];
        let (_, colon) = chars.next()?;
        if colon != ':' {
            return None;
        }
        // Value: quoted string (with escapes) or bare token.
        let (vi, vc) = chars.next()?;
        let value = if vc == '"' {
            let mut v = String::new();
            let mut escaped = false;
            loop {
                let (_, c) = chars.next()?;
                if escaped {
                    v.push(match c {
                        'n' => '\n',
                        'r' => '\r',
                        't' => '\t',
                        c => c,
                    });
                    escaped = false;
                } else if c == '\\' {
                    escaped = true;
                } else if c == '"' {
                    break;
                } else {
                    v.push(c);
                }
            }
            v
        } else {
            let mut end = vi + vc.len_utf8();
            while let Some(&(j, c)) = chars.peek() {
                if c == ',' || c == '}' {
                    break;
                }
                end = j + c.len_utf8();
                chars.next();
            }
            s[vi..end].trim().to_string()
        };
        out.insert(key.to_string(), value);
    }
}

fn parse_line(text: &str) -> Option<Line> {
    let map = parse_flat(text)?;
    let num = |k: &str| map.get(k).and_then(|v| v.parse::<u64>().ok()).unwrap_or(0);
    Some(Line {
        kind: map.get("kind")?.clone(),
        name: map.get("name")?.clone(),
        worker: match map.get("worker").map(String::as_str) {
            Some("null") | None => u32::MAX,
            Some(w) => w.parse().ok()?,
        },
        start_us: num("start_us"),
        dur_us: num("dur_us"),
        parent: num("parent"),
        delta: num("delta"),
        value: map.get("value").and_then(|v| v.parse().ok()).unwrap_or(0.0),
    })
}

fn fmt_us(us: u64) -> String {
    if us >= 1_000_000 {
        format!("{:.2}s", us as f64 / 1e6)
    } else if us >= 1_000 {
        format!("{:.1}ms", us as f64 / 1e3)
    } else {
        format!("{us}us")
    }
}

fn worker_label(w: u32) -> String {
    if w == u32::MAX {
        "--".to_string()
    } else {
        format!("w{w}")
    }
}

struct WorkerRow {
    /// Busy microseconds per timeline bin, from root spans only (children
    /// overlap their parents and would double-count).
    bins: Vec<u64>,
    spans: u64,
    busy_us: u64,
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let Some(path) = args.get(1).filter(|a| !a.starts_with("--")) else {
        eprintln!("usage: run_report <events.jsonl>");
        std::process::exit(2);
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("run_report: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    let mut events = Vec::new();
    let mut skipped = 0usize;
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        match parse_line(line) {
            Some(l) => events.push(l),
            None => skipped += 1,
        }
    }
    if events.is_empty() {
        eprintln!("run_report: no parseable events in {path}");
        std::process::exit(1);
    }
    let wall_us = events
        .iter()
        .filter(|e| e.kind == "span")
        .map(|e| e.start_us + e.dur_us)
        .max()
        .unwrap_or(1)
        .max(1);

    println!("run report: {path}");
    println!(
        "  {} events ({} spans, {} counters, {} gauges{}), wall {}",
        events.len(),
        events.iter().filter(|e| e.kind == "span").count(),
        events.iter().filter(|e| e.kind == "counter").count(),
        events.iter().filter(|e| e.kind == "gauge").count(),
        if skipped > 0 { format!(", {skipped} unparseable lines skipped") } else { String::new() },
        fmt_us(wall_us)
    );
    // Kernel backend header: last kernel.* gauges + total dispatch counts.
    let last_gauge = |name: &str| {
        events.iter().rev().find(|e| e.kind == "gauge" && e.name == name).map(|e| e.value)
    };
    let counter_sum = |name: &str| {
        events
            .iter()
            .filter(|e| e.kind == "counter" && e.name == name)
            .map(|e| e.delta)
            .sum::<u64>()
    };
    if let Some(avx2) = last_gauge("kernel.backend_avx2") {
        let threads = last_gauge("kernel.pool_threads").unwrap_or(1.0);
        println!(
            "  kernel backend {} | pool threads {} | dispatches avx2 {} / scalar {}",
            if avx2 > 0.5 { "avx2_fma" } else { "scalar" },
            threads as u64,
            counter_sum("kernel.dispatch_avx2"),
            counter_sum("kernel.dispatch_scalar"),
        );
    }

    // --- per-worker timeline ---
    let mut workers: BTreeMap<u32, WorkerRow> = BTreeMap::new();
    for e in events.iter().filter(|e| e.kind == "span") {
        let row = workers.entry(e.worker).or_insert_with(|| WorkerRow {
            bins: vec![0; TIMELINE_COLS],
            spans: 0,
            busy_us: 0,
        });
        row.spans += 1;
        if e.parent != 0 {
            continue;
        }
        row.busy_us += e.dur_us;
        // Spread the span's duration across the bins it overlaps.
        let (s, t) = (e.start_us, e.start_us + e.dur_us.max(1));
        let bin_w = wall_us.div_ceil(TIMELINE_COLS as u64).max(1);
        for b in (s / bin_w)..=((t - 1) / bin_w).min(TIMELINE_COLS as u64 - 1) {
            let lo = (b * bin_w).max(s);
            let hi = ((b + 1) * bin_w).min(t);
            workers.get_mut(&e.worker).unwrap().bins[b as usize] += hi - lo;
        }
    }
    println!(
        "\nper-worker timeline ({TIMELINE_COLS} bins, root spans; . <25% : <50% + <75% # busy)"
    );
    let bin_w = wall_us.div_ceil(TIMELINE_COLS as u64).max(1);
    for (w, row) in &workers {
        let strip: String = row
            .bins
            .iter()
            .map(|&busy| {
                let frac = busy as f64 / bin_w as f64;
                if frac <= 0.01 {
                    ' '
                } else if frac < 0.25 {
                    '.'
                } else if frac < 0.5 {
                    ':'
                } else if frac < 0.75 {
                    '+'
                } else {
                    '#'
                }
            })
            .collect();
        println!(
            "  {:>4} |{strip}| {} spans, busy {} ({:.0}%)",
            worker_label(*w),
            row.spans,
            fmt_us(row.busy_us),
            row.busy_us as f64 / wall_us as f64 * 100.0
        );
    }

    // --- phase breakdown ---
    let mut durs: BTreeMap<&str, Vec<u64>> = BTreeMap::new();
    for e in events.iter().filter(|e| e.kind == "span") {
        durs.entry(&e.name).or_default().push(e.dur_us);
    }
    println!("\nphase breakdown (per span name)");
    println!(
        "  {:<24} {:>8} {:>10} {:>9} {:>9} {:>9} {:>6}",
        "span", "count", "total", "p50", "p90", "max", "wall%"
    );
    for (name, d) in &mut durs {
        d.sort_unstable();
        let total: u64 = d.iter().sum();
        println!(
            "  {:<24} {:>8} {:>10} {:>9} {:>9} {:>9} {:>5.1}%",
            name,
            d.len(),
            fmt_us(total),
            fmt_us(percentile(d, 0.5)),
            fmt_us(percentile(d, 0.9)),
            fmt_us(*d.last().unwrap()),
            total as f64 / wall_us as f64 * 100.0
        );
    }

    let mut counters: BTreeMap<&str, u64> = BTreeMap::new();
    for e in events.iter().filter(|e| e.kind == "counter") {
        *counters.entry(&e.name).or_insert(0) += e.delta;
    }
    if !counters.is_empty() {
        println!("\ncounters");
        for (name, v) in &counters {
            println!("  {name:<24} {v:>12}");
        }
    }

    let mut gauges: BTreeMap<&str, (u64, f64, f64, f64)> = BTreeMap::new();
    for e in events.iter().filter(|e| e.kind == "gauge") {
        let g = gauges.entry(&e.name).or_insert((0, e.value, e.value, e.value));
        g.0 += 1;
        g.1 = e.value; // last
        g.2 = g.2.min(e.value);
        g.3 = g.3.max(e.value);
    }
    if !gauges.is_empty() {
        println!("\ngauges");
        println!("  {:<24} {:>8} {:>10} {:>10} {:>10}", "gauge", "samples", "last", "min", "max");
        for (name, (n, last, min, max)) in &gauges {
            println!("  {name:<24} {n:>8} {last:>10.2} {min:>10.2} {max:>10.2}");
        }
    }
}
