//! Figure 8 + the 230× claim: RMH vs IC posteriors on a τ observation.
//!
//! The paper's headline science result: for a test τ decay observation, the
//! IC posterior (trained network + importance sampling) closely matches the
//! RMH baseline posterior across the physics latents — x/y/z momentum
//! components, the decay channel, the two leading final-state-particle
//! energies, and the missing transverse energy — while reaching a given
//! effective sample size orders of magnitude faster (230× in the paper).
//!
//! Run: `cargo run -p etalumis-bench --release --bin fig8_posteriors`
//! (several minutes).

use etalumis_bench::{bench_ic_config, bench_tau_model, rule, tau_records};
use etalumis_core::{Executor, ObserveMap, Trace};
use etalumis_inference::total_variation;
use etalumis_inference::{ic_importance_sampling, rmh_with_callback, Histogram, RmhConfig};
use etalumis_nn::{Adam, LrSchedule};
use etalumis_simulators::TauDecayModel;
use etalumis_train::{IcNetwork, Trainer};
use std::time::Instant;

const RMH_ITERS: usize = 16_000;
const IC_SAMPLES: usize = 1_500;
const TRAIN_TRACES: usize = 1_024;
const TRAIN_STEPS: usize = 300;

struct Panel {
    name: &'static str,
    extract: fn(&Trace) -> f64,
    lo: f64,
    hi: f64,
    bins: usize,
}

fn panels() -> Vec<Panel> {
    vec![
        Panel {
            name: "tau px [GeV/c]",
            extract: |t| t.value_by_base("tau/px[Uniform]").unwrap().as_f64(),
            lo: -2.5,
            hi: 2.5,
            bins: 20,
        },
        Panel {
            name: "tau py [GeV/c]",
            extract: |t| t.value_by_base("tau/py[Uniform]").unwrap().as_f64(),
            lo: -2.5,
            hi: 2.5,
            bins: 20,
        },
        Panel {
            name: "tau pz [GeV/c]",
            extract: |t| t.value_by_base("tau/pz[Uniform]").unwrap().as_f64(),
            lo: 42.5,
            hi: 47.5,
            bins: 20,
        },
        Panel {
            name: "decay channel",
            extract: |t| t.value_by_base("tau/channel[Categorical]").unwrap().as_f64(),
            lo: 0.0,
            hi: 38.0,
            bins: 38,
        },
        Panel {
            name: "FSP energy 1 [GeV]",
            extract: |t| t.value_by_name("fsp_energy1").unwrap().as_f64(),
            lo: 0.0,
            hi: 48.0,
            bins: 20,
        },
        Panel {
            name: "FSP energy 2 [GeV]",
            extract: |t| t.value_by_name("fsp_energy2").unwrap().as_f64(),
            lo: 0.0,
            hi: 48.0,
            bins: 20,
        },
        Panel {
            name: "missing ET",
            extract: |t| t.value_by_name("met").unwrap().as_f64(),
            lo: 0.0,
            hi: 3.0,
            bins: 20,
        },
    ]
}

fn main() {
    rule("Figure 8: ground-truth event");
    let mut model = bench_tau_model();
    let truth = Executor::sample_prior(&mut model, 20190621);
    let obs = truth.first_observed().unwrap().clone();
    let mut observes = ObserveMap::new();
    observes.insert(TauDecayModel::OBSERVE_NAME.into(), obs);
    let ps = panels();
    let gt: Vec<f64> = ps.iter().map(|p| (p.extract)(&truth)).collect();
    for (p, g) in ps.iter().zip(gt.iter()) {
        println!("  {:<22} {g:.3}", p.name);
    }
    println!("  channel name: {}", truth.value_by_name("channel_name").unwrap());

    // --- RMH baseline (two chains for Gelman-Rubin) ---
    rule(&format!("RMH baseline ({RMH_ITERS} iterations x 2 chains)"));
    let mut rmh_hists: Vec<Histogram> =
        ps.iter().map(|p| Histogram::new(p.lo, p.hi, p.bins)).collect();
    let mut chain_means: Vec<Vec<f64>> = vec![Vec::new(); 2];
    let mut rmh_calls = 0usize;
    let t0 = Instant::now();
    for chain in 0..2 {
        let cfg = RmhConfig {
            iterations: RMH_ITERS,
            burn_in: RMH_ITERS / 4,
            thin: 1,
            seed: 100 + chain as u64,
            rw_scale: 0.06,
            prior_kernel: false,
        };
        let mut px_series = Vec::new();
        let stats = rmh_with_callback(&mut model, &observes, &cfg, |_, t| {
            for (p, h) in ps.iter().zip(rmh_hists.iter_mut()) {
                h.add((p.extract)(t), 1.0);
            }
            px_series.push((ps[0].extract)(t));
        });
        rmh_calls += stats.simulator_calls;
        chain_means[chain] = px_series;
        println!("  chain {chain}: acceptance {:.2}", stats.acceptance_rate());
    }
    let rmh_secs = t0.elapsed().as_secs_f64();
    let n = chain_means[0].len().min(chain_means[1].len());
    let rhat = etalumis_inference::diagnostics::gelman_rubin(&[
        chain_means[0][..n].to_vec(),
        chain_means[1][..n].to_vec(),
    ]);
    let tau_int = etalumis_inference::diagnostics::integrated_autocorr_time(&chain_means[0]);
    let rmh_ess = 2.0 * n as f64 / tau_int;
    println!("  wall {rmh_secs:.1}s, {rmh_calls} simulator calls");
    println!("  Gelman-Rubin R-hat (px): {rhat:.3}  (paper: two chains certify convergence)");
    println!("  autocorrelation time {tau_int:.0} iters -> chain ESS ~{rmh_ess:.0}");

    // --- IC: train then infer ---
    rule(&format!("IC: train on {TRAIN_TRACES} prior traces, {TRAIN_STEPS} steps"));
    let records = tau_records(TRAIN_TRACES, 40_000);
    let mut net = IcNetwork::new(bench_ic_config(8));
    net.pregenerate(records.iter());
    let mut trainer = Trainer::new(
        net,
        Adam::new(LrSchedule::Polynomial {
            initial: 1e-3,
            final_lr: 1e-4,
            order: 2,
            total_iters: TRAIN_STEPS,
        }),
    );
    trainer.grad_clip = Some(10.0);
    let t0 = Instant::now();
    let bsz = 32;
    for step in 0..TRAIN_STEPS {
        let lo = (step * bsz) % records.len();
        let hi = (lo + bsz).min(records.len());
        let res = trainer.step(&records[lo..hi]);
        if step % 50 == 0 {
            println!("  step {step:>4}: loss {:.3}", res.loss);
        }
    }
    println!("  training wall {:.1}s (amortized: done once per model)", t0.elapsed().as_secs_f64());

    let t0 = Instant::now();
    let post_ic = ic_importance_sampling(
        &mut model,
        &observes,
        TauDecayModel::OBSERVE_NAME,
        &mut trainer.net,
        IC_SAMPLES,
        77,
    );
    let ic_secs = t0.elapsed().as_secs_f64();
    let ic_ess = post_ic.effective_sample_size();
    println!(
        "  IC inference: {IC_SAMPLES} guided simulator calls in {ic_secs:.1}s, ESS {ic_ess:.0}"
    );

    // --- panels ---
    rule("posterior comparison (normalized histograms)");
    let mut tvs = Vec::new();
    for (pi, p) in ps.iter().enumerate() {
        let ic_hist = post_ic.histogram(p.extract, p.lo, p.hi, p.bins);
        let r = rmh_hists[pi].normalized();
        let i = ic_hist.normalized();
        let tv = total_variation(&r, &i);
        tvs.push(tv);
        println!("\n--- {} (ground truth {:.3}, TV(RMH,IC) = {tv:.3}) ---", p.name, gt[pi]);
        let centers = r.centers();
        let max = r.counts.iter().chain(i.counts.iter()).cloned().fold(0.0f64, f64::max).max(1e-9);
        for b in 0..p.bins {
            if r.counts[b] < 1e-4 && i.counts[b] < 1e-4 {
                continue;
            }
            let rbar = "R".repeat((r.counts[b] / max * 30.0).round() as usize);
            let ibar = "I".repeat((i.counts[b] / max * 30.0).round() as usize);
            println!("  {:>8.2} | {rbar:<31}| {ibar}", centers[b]);
        }
    }

    rule("speedup accounting (the paper's 230x)");
    let rmh_cost_per_ess = rmh_secs / rmh_ess.max(1.0);
    let ic_cost_per_ess = ic_secs / ic_ess.max(1.0);
    println!(
        "  RMH: {rmh_secs:.1}s / ESS {rmh_ess:.0} = {rmh_cost_per_ess:.4} s per effective sample"
    );
    println!(
        "  IC:  {ic_secs:.1}s / ESS {ic_ess:.0} = {ic_cost_per_ess:.4} s per effective sample"
    );
    println!(
        "  wall-clock speedup to equal ESS on this host: {:.1}x",
        rmh_cost_per_ess / ic_cost_per_ess
    );
    // The paper's 230x is dominated by *simulator* cost (Sherpa is ~10^6x
    // more expensive per call than our mini simulator, so there NN overhead
    // vanishes). The scale-free comparison is simulator calls per effective
    // sample:
    let rmh_calls_per_ess = rmh_calls as f64 / rmh_ess.max(1.0);
    let ic_calls_per_ess = IC_SAMPLES as f64 / ic_ess.max(1.0);
    println!(
        "  simulator calls per effective sample: RMH {rmh_calls_per_ess:.0} vs IC {ic_calls_per_ess:.0} -> {:.0}x fewer",
        rmh_calls_per_ess / ic_calls_per_ess
    );
    println!("  (with an expensive simulator like Sherpa this ratio IS the wall-clock");
    println!("  speedup; IC is additionally embarrassingly parallel and amortized)");
    let mean_tv = tvs.iter().sum::<f64>() / tvs.len() as f64;
    println!("  mean total-variation distance RMH vs IC over panels: {mean_tv:.3}");
}
