//! Figure 8 + the 230× claim: RMH vs IC posteriors on a τ observation.
//!
//! The paper's headline science result: for a test τ decay observation, the
//! IC posterior (trained network + importance sampling) closely matches the
//! RMH baseline posterior across the physics latents — x/y/z momentum
//! components, the decay channel, the two leading final-state-particle
//! energies, and the missing transverse energy — while reaching a given
//! effective sample size orders of magnitude faster (230× in the paper).
//!
//! Run: `cargo run -p etalumis-bench --release --bin fig8_posteriors`
//! (several minutes).

use etalumis_bench::{bench_ic_config, bench_tau_model, tau_records, Field, Logger};
use etalumis_core::{Executor, ObserveMap, Trace};
use etalumis_inference::total_variation;
use etalumis_inference::{ic_importance_sampling, rmh_with_callback, Histogram, RmhConfig};
use etalumis_nn::{Adam, LrSchedule};
use etalumis_simulators::TauDecayModel;
use etalumis_train::{IcNetwork, Trainer};
use std::time::Instant;

const RMH_ITERS: usize = 16_000;
const IC_SAMPLES: usize = 1_500;
const TRAIN_TRACES: usize = 1_024;
const TRAIN_STEPS: usize = 300;

struct Panel {
    name: &'static str,
    extract: fn(&Trace) -> f64,
    lo: f64,
    hi: f64,
    bins: usize,
}

fn panels() -> Vec<Panel> {
    vec![
        Panel {
            name: "tau px [GeV/c]",
            extract: |t| t.value_by_base("tau/px[Uniform]").unwrap().as_f64(),
            lo: -2.5,
            hi: 2.5,
            bins: 20,
        },
        Panel {
            name: "tau py [GeV/c]",
            extract: |t| t.value_by_base("tau/py[Uniform]").unwrap().as_f64(),
            lo: -2.5,
            hi: 2.5,
            bins: 20,
        },
        Panel {
            name: "tau pz [GeV/c]",
            extract: |t| t.value_by_base("tau/pz[Uniform]").unwrap().as_f64(),
            lo: 42.5,
            hi: 47.5,
            bins: 20,
        },
        Panel {
            name: "decay channel",
            extract: |t| t.value_by_base("tau/channel[Categorical]").unwrap().as_f64(),
            lo: 0.0,
            hi: 38.0,
            bins: 38,
        },
        Panel {
            name: "FSP energy 1 [GeV]",
            extract: |t| t.value_by_name("fsp_energy1").unwrap().as_f64(),
            lo: 0.0,
            hi: 48.0,
            bins: 20,
        },
        Panel {
            name: "FSP energy 2 [GeV]",
            extract: |t| t.value_by_name("fsp_energy2").unwrap().as_f64(),
            lo: 0.0,
            hi: 48.0,
            bins: 20,
        },
        Panel {
            name: "missing ET",
            extract: |t| t.value_by_name("met").unwrap().as_f64(),
            lo: 0.0,
            hi: 3.0,
            bins: 20,
        },
    ]
}

fn main() {
    let log = Logger::from_args();
    log.section("Figure 8: ground-truth event");
    let mut model = bench_tau_model();
    let truth = Executor::sample_prior(&mut model, 20190621);
    let obs = truth.first_observed().unwrap().clone();
    let mut observes = ObserveMap::new();
    observes.insert(TauDecayModel::OBSERVE_NAME.into(), obs);
    let ps = panels();
    let gt: Vec<f64> = ps.iter().map(|p| (p.extract)(&truth)).collect();
    for (p, g) in ps.iter().zip(gt.iter()) {
        log.info("ground_truth", &[("latent", Field::Str(p.name)), ("value", Field::F64(*g))]);
    }
    let channel = truth.value_by_name("channel_name").unwrap().to_string();
    log.info(
        "ground_truth",
        &[("latent", Field::Str("channel name")), ("value", Field::Str(&channel))],
    );

    // --- RMH baseline (two chains for Gelman-Rubin) ---
    log.section(&format!("RMH baseline ({RMH_ITERS} iterations x 2 chains)"));
    let mut rmh_hists: Vec<Histogram> =
        ps.iter().map(|p| Histogram::new(p.lo, p.hi, p.bins)).collect();
    let mut chain_means: Vec<Vec<f64>> = vec![Vec::new(); 2];
    let mut rmh_calls = 0usize;
    let t0 = Instant::now();
    for chain in 0..2 {
        let cfg = RmhConfig {
            iterations: RMH_ITERS,
            burn_in: RMH_ITERS / 4,
            thin: 1,
            seed: 100 + chain as u64,
            rw_scale: 0.06,
            prior_kernel: false,
        };
        let mut px_series = Vec::new();
        let stats = rmh_with_callback(&mut model, &observes, &cfg, |_, t| {
            for (p, h) in ps.iter().zip(rmh_hists.iter_mut()) {
                h.add((p.extract)(t), 1.0);
            }
            px_series.push((ps[0].extract)(t));
        });
        rmh_calls += stats.simulator_calls;
        chain_means[chain] = px_series;
        log.info(
            "rmh_chain",
            &[
                ("chain", Field::U64(chain as u64)),
                ("acceptance", Field::F64(stats.acceptance_rate())),
            ],
        );
    }
    let rmh_secs = t0.elapsed().as_secs_f64();
    let n = chain_means[0].len().min(chain_means[1].len());
    let rhat = etalumis_inference::diagnostics::gelman_rubin(&[
        chain_means[0][..n].to_vec(),
        chain_means[1][..n].to_vec(),
    ]);
    let tau_int = etalumis_inference::diagnostics::integrated_autocorr_time(&chain_means[0]);
    let rmh_ess = 2.0 * n as f64 / tau_int;
    log.info(
        "rmh_baseline",
        &[
            ("wall_s", Field::F64(rmh_secs)),
            ("simulator_calls", Field::U64(rmh_calls as u64)),
            ("gelman_rubin_rhat_px", Field::F64(rhat)),
            ("autocorr_time_iters", Field::F64(tau_int)),
            ("chain_ess", Field::F64(rmh_ess)),
            ("paper", Field::Str("two chains certify convergence")),
        ],
    );

    // --- IC: train then infer ---
    log.section(&format!("IC: train on {TRAIN_TRACES} prior traces, {TRAIN_STEPS} steps"));
    let records = tau_records(TRAIN_TRACES, 40_000);
    let mut net = IcNetwork::new(bench_ic_config(8));
    net.pregenerate(records.iter());
    let mut trainer = Trainer::new(
        net,
        Adam::new(LrSchedule::Polynomial {
            initial: 1e-3,
            final_lr: 1e-4,
            order: 2,
            total_iters: TRAIN_STEPS,
        }),
    );
    trainer.grad_clip = Some(10.0);
    let t0 = Instant::now();
    let bsz = 32;
    for step in 0..TRAIN_STEPS {
        let lo = (step * bsz) % records.len();
        let hi = (lo + bsz).min(records.len());
        let res = trainer.step(&records[lo..hi]);
        if step % 50 == 0 {
            log.info(
                "train_step",
                &[("step", Field::U64(step as u64)), ("loss", Field::F64(res.loss))],
            );
        }
    }
    log.info(
        "train_done",
        &[
            ("wall_s", Field::F64(t0.elapsed().as_secs_f64())),
            ("note", Field::Str("amortized: done once per model")),
        ],
    );

    let t0 = Instant::now();
    let post_ic = ic_importance_sampling(
        &mut model,
        &observes,
        TauDecayModel::OBSERVE_NAME,
        &mut trainer.net,
        IC_SAMPLES,
        77,
    );
    let ic_secs = t0.elapsed().as_secs_f64();
    let ic_ess = post_ic.effective_sample_size();
    log.info(
        "ic_inference",
        &[
            ("guided_simulator_calls", Field::U64(IC_SAMPLES as u64)),
            ("wall_s", Field::F64(ic_secs)),
            ("ess", Field::F64(ic_ess)),
        ],
    );

    // --- panels ---
    log.section("posterior comparison (normalized histograms)");
    let mut tvs = Vec::new();
    for (pi, p) in ps.iter().enumerate() {
        let ic_hist = post_ic.histogram(p.extract, p.lo, p.hi, p.bins);
        let r = rmh_hists[pi].normalized();
        let i = ic_hist.normalized();
        let tv = total_variation(&r, &i);
        tvs.push(tv);
        log.info(
            "panel",
            &[
                ("latent", Field::Str(p.name)),
                ("ground_truth", Field::F64(gt[pi])),
                ("tv_rmh_ic", Field::F64(tv)),
            ],
        );
        // Bin-level histogram comparison at debug level (`--log-debug`).
        let centers = r.centers();
        for b in 0..p.bins {
            if r.counts[b] < 1e-4 && i.counts[b] < 1e-4 {
                continue;
            }
            log.debug(
                "panel_bin",
                &[
                    ("latent", Field::Str(p.name)),
                    ("center", Field::F64(centers[b])),
                    ("rmh", Field::F64(r.counts[b])),
                    ("ic", Field::F64(i.counts[b])),
                ],
            );
        }
    }

    log.section("speedup accounting (the paper's 230x)");
    let rmh_cost_per_ess = rmh_secs / rmh_ess.max(1.0);
    let ic_cost_per_ess = ic_secs / ic_ess.max(1.0);
    log.speedup("seconds per effective sample", rmh_cost_per_ess, ic_cost_per_ess, "230x");
    // The paper's 230x is dominated by *simulator* cost (Sherpa is ~10^6x
    // more expensive per call than our mini simulator, so there NN overhead
    // vanishes). The scale-free comparison is simulator calls per effective
    // sample:
    let rmh_calls_per_ess = rmh_calls as f64 / rmh_ess.max(1.0);
    let ic_calls_per_ess = IC_SAMPLES as f64 / ic_ess.max(1.0);
    let mean_tv = tvs.iter().sum::<f64>() / tvs.len() as f64;
    log.info(
        "calls_per_effective_sample",
        &[
            ("rmh", Field::F64(rmh_calls_per_ess)),
            ("ic", Field::F64(ic_calls_per_ess)),
            ("ratio", Field::F64(rmh_calls_per_ess / ic_calls_per_ess)),
            (
                "note",
                Field::Str(
                    "with an expensive simulator like Sherpa this ratio IS the wall-clock \
                     speedup; IC is additionally embarrassingly parallel and amortized",
                ),
            ),
        ],
    );
    log.info("posterior_agreement", &[("mean_tv", Field::F64(mean_tv))]);
}
