//! Figure 2: hyperparameter search — loss curves for NN architectures.
//!
//! The paper sweeps LSTM units {128, 256, 512} × stacks {1..4} × proposal
//! mixture components {5, 10, 25, 50} and plots loss vs traces seen. We run
//! the same sweep shape at reduced scale (units {32, 64}, stacks {1, 2},
//! components {3, 5, 10}) on the τ dataset and print each loss series.
//! Expected shape: larger LSTMs reach lower loss per trace; mixture count
//! matters less than capacity (as in the paper, where curves cluster).
//!
//! Run: `cargo run -p etalumis-bench --release --bin fig2_hyperparams`

use etalumis_bench::{tau_records, Field, Logger, BENCH_OBS_DIMS};
use etalumis_nn::{Adam, Cnn3dConfig, LrSchedule};
use etalumis_train::{IcConfig, IcNetwork, Trainer};

fn run_config(
    units: usize,
    stacks: usize,
    mix: usize,
    records: &[etalumis_data::TraceRecord],
) -> Vec<(usize, f64)> {
    let cfg = IcConfig {
        cnn: Cnn3dConfig::small(BENCH_OBS_DIMS, 32),
        lstm_hidden: units,
        lstm_stacks: stacks,
        address_embed_dim: 16,
        sample_embed_dim: 4,
        proposal_hidden: 32,
        mixture_components: mix,
        seed: 11,
        time_batched_lstm: true,
    };
    let mut net = IcNetwork::new(cfg);
    net.pregenerate(records.iter());
    let mut trainer = Trainer::new(net, Adam::new(LrSchedule::Constant(1e-3)));
    trainer.grad_clip = Some(10.0);
    let bsz = 32;
    let steps = 60;
    let mut series = Vec::new();
    for step in 0..steps {
        let lo = (step * bsz) % records.len();
        let hi = (lo + bsz).min(records.len());
        let res = trainer.step(&records[lo..hi]);
        if step % 5 == 0 || step == steps - 1 {
            series.push((step * bsz, res.loss));
        }
    }
    series
}

fn main() {
    let log = Logger::from_args();
    log.section("Figure 2: hyperparameter search loss curves (scaled down)");
    let records = tau_records(512, 2000);
    log.info("dataset", &[("tau_traces", Field::U64(records.len() as u64))]);
    let mut finals = Vec::new();
    let sweep = |units: usize, stacks: usize, mix: usize, finals: &mut Vec<(String, f64)>| {
        let series = run_config(units, stacks, mix, &records);
        for (traces, loss) in &series {
            log.info(
                "loss_curve",
                &[
                    ("units", Field::U64(units as u64)),
                    ("stacks", Field::U64(stacks as u64)),
                    ("prop_mix", Field::U64(mix as u64)),
                    ("traces", Field::U64(*traces as u64)),
                    ("loss", Field::F64(*loss)),
                ],
            );
        }
        finals.push((format!("u{units}/s{stacks}/m{mix}"), series.last().unwrap().1));
    };
    // Units × stacks sweep at fixed mixture (paper's left sweep).
    for &units in &[32usize, 64] {
        for &stacks in &[1usize, 2] {
            sweep(units, stacks, 5, &mut finals);
        }
    }
    // Mixture sweep at the largest capacity (paper's right sweep).
    for &mix in &[3usize, 10] {
        sweep(64, 1, mix, &mut finals);
    }
    log.section("final losses");
    finals.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    for (name, loss) in &finals {
        log.info("final_loss", &[("config", Field::Str(name)), ("loss", Field::F64(*loss))]);
    }
    log.info(
        "best_configuration",
        &[
            ("config", Field::Str(&finals[0].0)),
            ("paper", Field::Str("settles on its largest LSTM, 1 stack")),
        ],
    );
}
