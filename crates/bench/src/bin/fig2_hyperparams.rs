//! Figure 2: hyperparameter search — loss curves for NN architectures.
//!
//! The paper sweeps LSTM units {128, 256, 512} × stacks {1..4} × proposal
//! mixture components {5, 10, 25, 50} and plots loss vs traces seen. We run
//! the same sweep shape at reduced scale (units {32, 64}, stacks {1, 2},
//! components {3, 5, 10}) on the τ dataset and print each loss series.
//! Expected shape: larger LSTMs reach lower loss per trace; mixture count
//! matters less than capacity (as in the paper, where curves cluster).
//!
//! Run: `cargo run -p etalumis-bench --release --bin fig2_hyperparams`

use etalumis_bench::{rule, tau_records, BENCH_OBS_DIMS};
use etalumis_nn::{Adam, Cnn3dConfig, LrSchedule};
use etalumis_train::{IcConfig, IcNetwork, Trainer};

fn run_config(
    units: usize,
    stacks: usize,
    mix: usize,
    records: &[etalumis_data::TraceRecord],
) -> Vec<(usize, f64)> {
    let cfg = IcConfig {
        cnn: Cnn3dConfig::small(BENCH_OBS_DIMS, 32),
        lstm_hidden: units,
        lstm_stacks: stacks,
        address_embed_dim: 16,
        sample_embed_dim: 4,
        proposal_hidden: 32,
        mixture_components: mix,
        seed: 11,
    };
    let mut net = IcNetwork::new(cfg);
    net.pregenerate(records.iter());
    let mut trainer = Trainer::new(net, Adam::new(LrSchedule::Constant(1e-3)));
    trainer.grad_clip = Some(10.0);
    let bsz = 32;
    let steps = 60;
    let mut series = Vec::new();
    for step in 0..steps {
        let lo = (step * bsz) % records.len();
        let hi = (lo + bsz).min(records.len());
        let res = trainer.step(&records[lo..hi]);
        if step % 5 == 0 || step == steps - 1 {
            series.push((step * bsz, res.loss));
        }
    }
    series
}

fn main() {
    rule("Figure 2: hyperparameter search loss curves (scaled down)");
    let records = tau_records(512, 2000);
    println!("dataset: {} tau traces\n", records.len());
    let mut finals = Vec::new();
    // Units × stacks sweep at fixed mixture (paper's left sweep).
    for &units in &[32usize, 64] {
        for &stacks in &[1usize, 2] {
            let series = run_config(units, stacks, 5, &records);
            println!("LSTM Units={units} Stacks={stacks} PropMix=5");
            for (traces, loss) in &series {
                println!("  traces {traces:>6}  loss {loss:.4}");
            }
            finals.push((format!("u{units}/s{stacks}/m5"), series.last().unwrap().1));
        }
    }
    // Mixture sweep at the largest capacity (paper's right sweep).
    for &mix in &[3usize, 10] {
        let series = run_config(64, 1, mix, &records);
        println!("LSTM Units=64 Stacks=1 PropMix={mix}");
        for (traces, loss) in &series {
            println!("  traces {traces:>6}  loss {loss:.4}");
        }
        finals.push((format!("u64/s1/m{mix}"), series.last().unwrap().1));
    }
    rule("final losses");
    finals.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    for (name, loss) in &finals {
        println!("  {name:<14} {loss:.4}");
    }
    let best = &finals[0];
    println!("\nbest configuration: {} (paper settles on its largest LSTM, 1 stack)", best.0);
}
