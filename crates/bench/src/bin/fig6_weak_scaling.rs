//! Figure 6: weak scaling on Cori and Edison to 1,024 nodes.
//!
//! Part 1 measures real 1-rank → 2-rank scaling of the distributed trainer
//! on this machine. Part 2 uses the calibrated performance model
//! (DESIGN.md substitution table) to regenerate the paper's two curves:
//! average and peak traces/s vs node count with the ideal line, hitting the
//! paper's ≈0.5 (Cori) and ≈0.79 (Edison) average efficiencies at 1,024
//! nodes (28k / 22k traces/s average).
//!
//! Run: `cargo run -p etalumis-bench --release --bin fig6_weak_scaling`

use etalumis_bench::{bench_ic_config, tau_dataset, Field, Logger};
use etalumis_nn::LrSchedule;
use etalumis_train::{train_distributed, AllReduceStrategy, DistConfig, ScalingModel};

fn main() {
    let log = Logger::from_args();
    log.section("measured: this machine, 1 -> 2 ranks (weak scaling)");
    let (ds, dir) = tau_dataset(256, 256, "fig6");
    let mut rates = Vec::new();
    for ranks in [1usize, 2] {
        let dist = DistConfig {
            ranks,
            minibatch_per_rank: 16,
            epochs: 1,
            max_iterations: Some(8),
            strategy: AllReduceStrategy::SparseConcat,
            lr: LrSchedule::Constant(1e-3),
            larc_trust: None,
            buckets: 1,
            seed: 5,
        };
        let (_, report) = train_distributed(&ds, bench_ic_config(6), &dist).expect("dataset read");
        log.info(
            "measured_scaling",
            &[
                ("ranks", Field::U64(ranks as u64)),
                ("traces_per_sec", Field::F64(report.traces_per_sec())),
            ],
        );
        rates.push(report.traces_per_sec());
    }
    log.info("measured_efficiency", &[("two_rank", Field::F64(rates[1] / (2.0 * rates[0])))]);
    let _ = std::fs::remove_dir_all(&dir);

    for model in [ScalingModel::cori(), ScalingModel::edison()] {
        log.section(&format!("modeled: weak scaling on {}", model.system));
        for &nodes in &[1usize, 64, 128, 256, 512, 1024] {
            let iters = if nodes >= 512 { 100 } else { 200 };
            let p = model.simulate(nodes, iters);
            log.info(
                "modeled_scaling",
                &[
                    ("system", Field::Str(model.system)),
                    ("nodes", Field::U64(p.nodes as u64)),
                    ("avg_traces_per_sec", Field::F64(p.avg_traces_per_sec)),
                    ("peak_traces_per_sec", Field::F64(p.peak_traces_per_sec)),
                    ("ideal_traces_per_sec", Field::F64(p.ideal)),
                    ("efficiency", Field::F64(p.efficiency())),
                ],
            );
        }
    }
    log.info(
        "paper_reference",
        &[(
            "fig6",
            Field::Str(
                "at 1,024 nodes: Cori avg 28,000 / peak 42,000 tr/s (~0.5 efficiency); \
                 Edison avg 22,000 / peak 28,000 tr/s (~0.79); max sustained 450/325 Tflop/s",
            ),
        )],
    );
}
