//! Figure 6: weak scaling on Cori and Edison to 1,024 nodes.
//!
//! Part 1 measures real 1-rank → 2-rank scaling of the distributed trainer
//! on this machine. Part 2 uses the calibrated performance model
//! (DESIGN.md substitution table) to regenerate the paper's two curves:
//! average and peak traces/s vs node count with the ideal line, hitting the
//! paper's ≈0.5 (Cori) and ≈0.79 (Edison) average efficiencies at 1,024
//! nodes (28k / 22k traces/s average).
//!
//! Run: `cargo run -p etalumis-bench --release --bin fig6_weak_scaling`

use etalumis_bench::{bench_ic_config, rule, tau_dataset};
use etalumis_nn::LrSchedule;
use etalumis_train::{train_distributed, AllReduceStrategy, DistConfig, ScalingModel};

fn main() {
    rule("measured: this machine, 1 -> 2 ranks (weak scaling)");
    let (ds, dir) = tau_dataset(256, 256, "fig6");
    let mut rates = Vec::new();
    for ranks in [1usize, 2] {
        let dist = DistConfig {
            ranks,
            minibatch_per_rank: 16,
            epochs: 1,
            max_iterations: Some(8),
            strategy: AllReduceStrategy::SparseConcat,
            lr: LrSchedule::Constant(1e-3),
            larc_trust: None,
            buckets: 1,
            seed: 5,
        };
        let (_, report) = train_distributed(&ds, bench_ic_config(6), &dist).expect("dataset read");
        println!("  {ranks} rank(s): {:>8.1} traces/s", report.traces_per_sec());
        rates.push(report.traces_per_sec());
    }
    println!("  2-rank efficiency vs ideal: {:.2}", rates[1] / (2.0 * rates[0]));
    let _ = std::fs::remove_dir_all(&dir);

    for model in [ScalingModel::cori(), ScalingModel::edison()] {
        rule(&format!("modeled: weak scaling on {}", model.system));
        println!(
            "{:>7} {:>12} {:>12} {:>12} {:>11}",
            "nodes", "avg tr/s", "peak tr/s", "ideal tr/s", "efficiency"
        );
        for &nodes in &[1usize, 64, 128, 256, 512, 1024] {
            let iters = if nodes >= 512 { 100 } else { 200 };
            let p = model.simulate(nodes, iters);
            println!(
                "{:>7} {:>12.0} {:>12.0} {:>12.0} {:>11.2}",
                p.nodes,
                p.avg_traces_per_sec,
                p.peak_traces_per_sec,
                p.ideal,
                p.efficiency()
            );
        }
    }
    println!("\npaper reference at 1,024 nodes: Cori avg 28,000 / peak 42,000 tr/s");
    println!("(efficiency ~0.5); Edison avg 22,000 / peak 28,000 tr/s (~0.79).");
    println!("Max sustained: 450 Tflop/s (Cori), 325 Tflop/s (Edison).");
}
