//! Table 1 + Table 2: single-node training throughput and flop rates.
//!
//! Measures this machine's 1-rank and 2-rank IC training throughput
//! (traces/s), derives Gflop/s from the analytic flop count of the network,
//! and prints the paper's platform table alongside for shape comparison
//! (2-rank ≈ 1.8–1.9× of 1-rank; 20–43% of peak on the paper's CPUs).
//!
//! Run: `cargo run -p etalumis-bench --release --bin table2_throughput`

use etalumis_bench::{bench_ic_config, tau_dataset, Field, Logger};
use etalumis_nn::LrSchedule;
use etalumis_tensor::flops::training_flops;
use etalumis_train::{platforms, train_distributed, AllReduceStrategy, DistConfig, IcConfig};

fn measure(ranks: usize, ds: &etalumis_data::TraceDataset, cfg: IcConfig) -> (f64, f64) {
    let dist = DistConfig {
        ranks,
        minibatch_per_rank: 16,
        epochs: 1,
        max_iterations: Some(12),
        strategy: AllReduceStrategy::SparseConcat,
        lr: LrSchedule::Constant(1e-3),
        larc_trust: None,
        buckets: 1,
        seed: 2,
    };
    let (net, report) = train_distributed(ds, cfg, &dist).expect("dataset read");
    // Flops per trace: forward count for the mean trace length × the
    // forward+backward multiplier.
    let mut net = net;
    let mean_len = (0..ds.len()).map(|i| ds.meta(i).1 as u64).sum::<u64>() / ds.len() as u64;
    let fwd = net.forward_flops(1, mean_len as usize);
    let flops_per_trace = training_flops(fwd);
    let tps = report.traces_per_sec();
    use etalumis_nn::Module;
    let _ = net.num_params();
    (tps, tps * flops_per_trace as f64 / 1e9)
}

fn main() {
    let log = Logger::from_args();
    log.section("Table 1: Intel Xeon CPU models and codes (paper)");
    for p in platforms() {
        log.info(
            "platform",
            &[
                ("model", Field::Str(p.model)),
                ("code", Field::Str(p.code)),
                ("peak_sp_gflops", Field::F64(p.peak_sp_gflops)),
            ],
        );
    }

    log.section("Table 2 (paper): single-node training throughput");
    for p in platforms() {
        log.info(
            "paper_throughput",
            &[
                ("code", Field::Str(p.code)),
                ("traces_per_sec_1socket", Field::F64(p.paper_traces_1s)),
                ("traces_per_sec_2socket", Field::F64(p.paper_traces_2s)),
                ("gflops_1socket", Field::F64(p.paper_gflops)),
                ("peak_pct", Field::F64(p.paper_gflops / p.peak_sp_gflops * 100.0)),
            ],
        );
    }

    log.section("Table 2 (ours): this machine, scaled-down tau model");
    let (ds, dir) = tau_dataset(384, 384, "table2");
    let (tps1, gf1) = measure(1, &ds, bench_ic_config(1));
    let (tps2, gf2) = measure(2, &ds, bench_ic_config(1));
    log.info(
        "measured_throughput",
        &[
            ("platform", Field::Str("this-host")),
            ("traces_per_sec_1rank", Field::F64(tps1)),
            ("traces_per_sec_2rank", Field::F64(tps2)),
            ("gflops_1rank", Field::F64(gf1)),
            ("gflops_2rank", Field::F64(gf2)),
            ("socket_speedup", Field::F64(tps2 / tps1)),
            ("paper_range", Field::Str("1.62x-1.90x")),
        ],
    );
    log.info(
        "note",
        &[(
            "text",
            Field::Str(
                "absolute numbers reflect this machine and the reduced model; the \
                 reproduced shape is the near-2x socket scaling and the flop accounting \
                 methodology (analytic flops / measured wall time)",
            ),
        )],
    );
    let _ = std::fs::remove_dir_all(&dir);
}
