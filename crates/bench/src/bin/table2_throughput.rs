//! Table 1 + Table 2: single-node training throughput and flop rates.
//!
//! Measures this machine's 1-rank and 2-rank IC training throughput
//! (traces/s), derives Gflop/s from the analytic flop count of the network,
//! and prints the paper's platform table alongside for shape comparison
//! (2-rank ≈ 1.8–1.9× of 1-rank; 20–43% of peak on the paper's CPUs).
//!
//! Run: `cargo run -p etalumis-bench --release --bin table2_throughput`

use etalumis_bench::{bench_ic_config, rule, tau_dataset};
use etalumis_nn::LrSchedule;
use etalumis_tensor::flops::training_flops;
use etalumis_train::{platforms, train_distributed, AllReduceStrategy, DistConfig, IcConfig};

fn measure(ranks: usize, ds: &etalumis_data::TraceDataset, cfg: IcConfig) -> (f64, f64) {
    let dist = DistConfig {
        ranks,
        minibatch_per_rank: 16,
        epochs: 1,
        max_iterations: Some(12),
        strategy: AllReduceStrategy::SparseConcat,
        lr: LrSchedule::Constant(1e-3),
        larc_trust: None,
        buckets: 1,
        seed: 2,
    };
    let (net, report) = train_distributed(ds, cfg, &dist).expect("dataset read");
    // Flops per trace: forward count for the mean trace length × the
    // forward+backward multiplier.
    let mut net = net;
    let mean_len = (0..ds.len()).map(|i| ds.meta(i).1 as u64).sum::<u64>() / ds.len() as u64;
    let fwd = net.forward_flops(1, mean_len as usize);
    let flops_per_trace = training_flops(fwd);
    let tps = report.traces_per_sec();
    use etalumis_nn::Module;
    let _ = net.num_params();
    (tps, tps * flops_per_trace as f64 / 1e9)
}

fn main() {
    rule("Table 1: Intel Xeon CPU models and codes (paper)");
    println!("{:<42} {:>5} {:>8}", "Model", "Code", "peak SP");
    for p in platforms() {
        println!("{:<42} {:>5} {:>7.0}G", p.model, p.code, p.peak_sp_gflops);
    }

    rule("Table 2 (paper): single-node training throughput");
    println!(
        "{:<16} {:>14} {:>14} {:>18}",
        "Platform", "1-socket tr/s", "2-socket tr/s", "1-socket Gflop/s"
    );
    for p in platforms() {
        println!(
            "{:<16} {:>14.1} {:>14.1} {:>11.0} ({:.0}%)",
            format!("{} ", p.code),
            p.paper_traces_1s,
            p.paper_traces_2s,
            p.paper_gflops,
            p.paper_gflops / p.peak_sp_gflops * 100.0
        );
    }

    rule("Table 2 (ours): this machine, scaled-down tau model");
    let (ds, dir) = tau_dataset(384, 384, "table2");
    let (tps1, gf1) = measure(1, &ds, bench_ic_config(1));
    let (tps2, gf2) = measure(2, &ds, bench_ic_config(1));
    println!(
        "{:<16} {:>14} {:>14} {:>18}",
        "Platform", "1-rank tr/s", "2-rank tr/s", "1-rank Gflop/s"
    );
    println!("{:<16} {:>14.1} {:>14.1} {:>18.2}", "this-host", tps1, tps2, gf1);
    println!("\n2-rank / 1-rank speedup: {:.2}x (paper range: 1.62x-1.90x)", tps2 / tps1);
    println!("2-rank Gflop/s: {gf2:.2}");
    println!("\nNote: absolute numbers reflect this machine and the reduced model;");
    println!("the reproduced *shape* is the near-2x socket scaling and the flop");
    println!("accounting methodology (analytic flops / measured wall time).");
    let _ = std::fs::remove_dir_all(&dir);
}
