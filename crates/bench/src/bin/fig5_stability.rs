//! Figure 5: training stability — mean ± std loss over five runs, plus the
//! §7.1.2 optimizer/schedule comparison (Adam vs Adam-LARC, polynomial
//! decay orders).
//!
//! The paper shows five 128k-minibatch runs converging stably (shaded std
//! band shrinking); we run five seeds at reduced scale and print the band.
//!
//! Run: `cargo run -p etalumis-bench --release --bin fig5_stability`

use etalumis_bench::{bench_ic_config, tau_records, Field, Logger};
use etalumis_nn::{Adam, LrSchedule, Optimizer};
use etalumis_train::{IcNetwork, Trainer};

fn run_once<O: Optimizer>(
    seed: u64,
    records: &[etalumis_data::TraceRecord],
    opt: O,
    steps: usize,
) -> Vec<f64> {
    let mut net = IcNetwork::new(bench_ic_config(seed));
    net.pregenerate(records.iter());
    let mut trainer = Trainer::new(net, opt);
    trainer.grad_clip = Some(10.0);
    let bsz = 32;
    (0..steps)
        .map(|step| {
            let lo = (step * bsz) % records.len();
            let hi = (lo + bsz).min(records.len());
            trainer.step(&records[lo..hi]).loss
        })
        .collect()
}

fn main() {
    let log = Logger::from_args();
    log.section("Figure 5: five-run mean and std of the training loss");
    let records = tau_records(512, 3100);
    let steps = 50;
    let runs: Vec<Vec<f64>> = (0..5)
        .map(|seed| run_once(seed, &records, Adam::new(LrSchedule::Constant(1e-3)), steps))
        .collect();
    for it in (0..steps).step_by(5).chain([steps - 1]) {
        let vals: Vec<f64> = runs.iter().map(|r| r[it]).collect();
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        let std = (vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / vals.len() as f64).sqrt();
        log.info(
            "loss_band",
            &[
                ("iter", Field::U64(it as u64)),
                ("mean", Field::F64(mean)),
                ("std", Field::F64(std)),
            ],
        );
    }
    let first: Vec<f64> = runs.iter().map(|r| r[0]).collect();
    let last: Vec<f64> = runs.iter().map(|r| r[steps - 1]).collect();
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    log.info(
        "convergence",
        &[
            ("mean_first", Field::F64(mean(&first))),
            ("mean_final", Field::F64(mean(&last))),
            ("paper", Field::Str("all five runs converge stably at 128k")),
        ],
    );

    log.section("§7.1.2: optimizer and LR-schedule comparison");
    let steps = 50;
    let configs: Vec<(&str, Box<dyn Fn() -> Adam>)> = vec![
        ("Adam, constant lr", Box::new(|| Adam::new(LrSchedule::Constant(1e-3)))),
        (
            "Adam, poly decay order 1",
            Box::new(|| {
                Adam::new(LrSchedule::Polynomial {
                    initial: 1e-3,
                    final_lr: 1e-4,
                    order: 1,
                    total_iters: 50,
                })
            }),
        ),
        (
            "Adam, poly decay order 2",
            Box::new(|| {
                Adam::new(LrSchedule::Polynomial {
                    initial: 1e-3,
                    final_lr: 1e-4,
                    order: 2,
                    total_iters: 50,
                })
            }),
        ),
        (
            "Adam-LARC, poly order 2",
            Box::new(|| {
                Adam::with_larc(
                    LrSchedule::Polynomial {
                        initial: 2e-3,
                        final_lr: 2e-5,
                        order: 2,
                        total_iters: 50,
                    },
                    1e-2,
                )
            }),
        ),
    ];
    for (name, mk) in &configs {
        let losses = run_once(42, &records, mk(), steps);
        log.info(
            "optimizer_comparison",
            &[
                ("config", Field::Str(name)),
                ("first_loss", Field::F64(losses[0])),
                ("final_loss", Field::F64(losses[steps - 1])),
            ],
        );
    }
    log.info(
        "paper_reference",
        &[(
            "s7_1_2",
            Field::Str(
                "Adam-LARC with polynomial order-2 decay was best at 128k; plain Adam \
                 matches it at small minibatch (as seen here)",
            ),
        )],
    );
}
