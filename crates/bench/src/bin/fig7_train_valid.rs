//! Figure 7: training and validation loss vs iteration.
//!
//! The paper plots both losses for a 128k-minibatch run on 1,024 Edison
//! nodes, converging together (no overfitting gap at these data volumes).
//! We train on a τ train split and evaluate a held-out validation split.
//!
//! Run: `cargo run -p etalumis-bench --release --bin fig7_train_valid`

use etalumis_bench::{bench_ic_config, tau_records, Field, Logger};
use etalumis_nn::{Adam, LrSchedule};
use etalumis_train::{IcNetwork, Trainer};

fn main() {
    let log = Logger::from_args();
    log.section("Figure 7: training and validation loss");
    let all = tau_records(768, 5000);
    let (train, valid) = all.split_at(512);
    log.info(
        "dataset",
        &[
            ("train_traces", Field::U64(train.len() as u64)),
            ("valid_traces", Field::U64(valid.len() as u64)),
        ],
    );
    let mut net = IcNetwork::new(bench_ic_config(7));
    net.pregenerate(all.iter()); // layers must cover validation addresses too
    let mut trainer = Trainer::new(
        net,
        Adam::new(LrSchedule::Polynomial {
            initial: 1e-3,
            final_lr: 1e-4,
            order: 2,
            total_iters: 80,
        }),
    );
    trainer.grad_clip = Some(10.0);
    let bsz = 32;
    let steps = 80;
    let mut last = (0.0, 0.0);
    for step in 0..steps {
        let lo = (step * bsz) % train.len();
        let hi = (lo + bsz).min(train.len());
        let res = trainer.step(&train[lo..hi]);
        if step % 8 == 0 || step == steps - 1 {
            let vloss = trainer.evaluate(&valid[..128.min(valid.len())]);
            log.info(
                "loss",
                &[
                    ("iter", Field::U64(step as u64)),
                    ("train_loss", Field::F64(res.loss)),
                    ("valid_loss", Field::F64(vloss)),
                ],
            );
            last = (res.loss, vloss);
        }
    }
    log.info(
        "final",
        &[
            ("train_loss", Field::F64(last.0)),
            ("valid_loss", Field::F64(last.1)),
            ("gap", Field::F64(last.1 - last.0)),
            (
                "paper",
                Field::Str(
                    "both fall together and track each other, validation slightly above train",
                ),
            ),
        ],
    );
}
