//! Figure 7: training and validation loss vs iteration.
//!
//! The paper plots both losses for a 128k-minibatch run on 1,024 Edison
//! nodes, converging together (no overfitting gap at these data volumes).
//! We train on a τ train split and evaluate a held-out validation split.
//!
//! Run: `cargo run -p etalumis-bench --release --bin fig7_train_valid`

use etalumis_bench::{bench_ic_config, rule, tau_records};
use etalumis_nn::{Adam, LrSchedule};
use etalumis_train::{IcNetwork, Trainer};

fn main() {
    rule("Figure 7: training and validation loss");
    let all = tau_records(768, 5000);
    let (train, valid) = all.split_at(512);
    println!("train: {} traces, validation: {} traces\n", train.len(), valid.len());
    let mut net = IcNetwork::new(bench_ic_config(7));
    net.pregenerate(all.iter()); // layers must cover validation addresses too
    let mut trainer = Trainer::new(
        net,
        Adam::new(LrSchedule::Polynomial {
            initial: 1e-3,
            final_lr: 1e-4,
            order: 2,
            total_iters: 80,
        }),
    );
    trainer.grad_clip = Some(10.0);
    println!("{:<8} {:>12} {:>12}", "iter", "train loss", "valid loss");
    let bsz = 32;
    let steps = 80;
    let mut last = (0.0, 0.0);
    for step in 0..steps {
        let lo = (step * bsz) % train.len();
        let hi = (lo + bsz).min(train.len());
        let res = trainer.step(&train[lo..hi]);
        if step % 8 == 0 || step == steps - 1 {
            let vloss = trainer.evaluate(&valid[..128.min(valid.len())]);
            println!("{step:<8} {:>12.4} {:>12.4}", res.loss, vloss);
            last = (res.loss, vloss);
        }
    }
    println!(
        "\nfinal: train {:.4}, valid {:.4} (gap {:+.4}); paper shape: both fall",
        last.0,
        last.1,
        last.1 - last.0
    );
    println!("together and track each other, validation slightly above train.");
}
