//! Figure 4: per-phase time breakdown, actual vs best, and load imbalance.
//!
//! Two parts:
//! 1. **Measured** on this machine: 1-rank and 2-rank distributed training
//!    with per-phase instrumentation; "actual" sums per-iteration max-rank
//!    times, "best" the per-iteration rank means.
//! 2. **Modeled** at 64 sockets with the calibrated phase model (we cannot
//!    host 64 sockets): reproduces the paper's ~5% (2 sockets) → ~19%
//!    (64 sockets) imbalance growth on the BDW phase profile.
//!
//! Run: `cargo run -p etalumis-bench --release --bin fig4_load_balance`

use etalumis_bench::{bench_ic_config, rule, tau_dataset};
use etalumis_nn::LrSchedule;
use etalumis_train::{train_distributed, AllReduceStrategy, DistConfig, PhaseModel, PhaseTimings};

fn print_phases(label: &str, t: &PhaseTimings, traces: f64) {
    println!(
        "{label:<22} read {:>7.2} fwd {:>7.2} bwd {:>7.2} opt {:>7.2} sync {:>7.2}  (msec/trace)",
        t.batch_read / traces * 1e3,
        t.forward / traces * 1e3,
        t.backward / traces * 1e3,
        t.optimizer / traces * 1e3,
        t.sync / traces * 1e3,
    );
}

fn main() {
    rule("Figure 4 (measured): phase breakdown on this machine");
    let (ds, dir) = tau_dataset(256, 256, "fig4");
    for ranks in [1usize, 2] {
        let dist = DistConfig {
            ranks,
            minibatch_per_rank: 16,
            epochs: 1,
            max_iterations: Some(8),
            strategy: AllReduceStrategy::SparseConcat,
            lr: LrSchedule::Constant(1e-3),
            larc_trust: None,
            buckets: 1,
            seed: 3,
        };
        let (_, report) = train_distributed(&ds, bench_ic_config(4), &dist);
        let (actual, best) = report.actual_vs_best();
        let traces = report.traces_total as f64 / ranks as f64;
        println!("\n{ranks} rank(s):");
        print_phases("  actual (max rank)", &actual, traces);
        print_phases("  best (mean rank)", &best, traces);
        let imb = (actual.total() / best.total() - 1.0) * 100.0;
        println!("  load imbalance: {imb:.1}%");
    }
    let _ = std::fs::remove_dir_all(&dir);

    rule("Figure 4 (modeled): BDW phase profile, 1 / 2 / 64 sockets");
    println!("(phase means calibrated to the paper's measured BDW msec/trace)");
    let model = PhaseModel::paper_bdw();
    println!(
        "\n{:<10} {:>7} {:>7} {:>7} {:>7} {:>7} {:>9} {:>11}",
        "sockets", "read", "fwd", "bwd", "opt", "sync", "total", "imbalance"
    );
    for sockets in [1usize, 2, 64] {
        let row = model.breakdown(sockets, 600);
        println!(
            "{:<10} {:>7.1} {:>7.1} {:>7.1} {:>7.1} {:>7.1} {:>9.1} {:>10.1}%",
            format!("{sockets} actual"),
            row.actual[0],
            row.actual[1],
            row.actual[2],
            row.actual[3],
            row.sync,
            row.total_actual(),
            row.imbalance_pct
        );
        println!(
            "{:<10} {:>7.1} {:>7.1} {:>7.1} {:>7.1} {:>7.1} {:>9.1}",
            format!("{sockets} best"),
            row.best[0],
            row.best[1],
            row.best[2],
            row.best[3],
            row.sync,
            row.total_best()
        );
    }
    println!("\npaper reference: ~5% imbalance at 2 sockets, ~19% at 64 sockets;");
    println!("backward dominates, then forward, then batch read, then optimizer.");
}
