//! Figure 4: load imbalance in parallel trace generation, measured on the
//! real work-stealing runtime (no simulated scheduler).
//!
//! The paper's dynamic load balancing keeps many simulator workers busy
//! even though trace costs are heavy-tailed (rejection loops, 38-way decay
//! branching). We reproduce the measurement directly: the same trace batch
//! is executed under (a) static block partitioning (stealing off) and
//! (b) the work-stealing scheduler, and we report per-worker busy times,
//! "actual vs best" totals (max-worker vs mean-worker busy — the paper's
//! imbalance metric), and observed steal counts.
//!
//! Run: `cargo run -p etalumis-bench --release --bin fig4_load_balance`
//! (`-- --quick` shrinks the batch for CI smoke runs).

use etalumis_bench::{bench_tau_model, Field, Logger};
use etalumis_core::{FnProgram, ObserveMap, SimCtx, SimCtxExt};
use etalumis_distributions::{Distribution, Value};
use etalumis_runtime::{BatchRunner, CountingSink, RunStats, RuntimeConfig, SimulatorPool};

/// A heavy-tailed program in the paper's sense: per-trace cost follows a
/// Pareto-like law (cost ∝ 1/u, u uniform), so a handful of traces cost
/// 100–1000× the median and whichever static block holds them straggles.
fn skewed_program() -> FnProgram<impl FnMut(&mut dyn SimCtx) -> Value> {
    FnProgram::new("skewed", |ctx: &mut dyn SimCtx| {
        let u = ctx.sample_f64(&Distribution::Uniform { low: 1e-3, high: 1.0 }, "u");
        // 20k .. 2M inner iterations: ~0.2ms median, ~20ms tail per trace.
        let spin = ((20_000.0 / u) as u64).min(2_000_000);
        let mut acc = u;
        for i in 0..spin {
            acc = (acc + i as f64 * 1e-9).sin().abs() + 1e-12;
        }
        ctx.observe(&Distribution::Normal { mean: acc.min(1.0), std: 1.0 }, "y");
        Value::Real(acc)
    })
}

fn report(log: &Logger, label: &str, workers: usize, stats: &RunStats) {
    let executed: Vec<usize> = stats.per_worker.iter().map(|w| w.executed).collect();
    let busy_ms: Vec<f64> = stats.per_worker.iter().map(|w| w.busy.as_secs_f64() * 1e3).collect();
    let actual = busy_ms.iter().cloned().fold(0.0f64, f64::max);
    let best = busy_ms.iter().sum::<f64>() / busy_ms.len().max(1) as f64;
    let executed = format!("{executed:?}");
    log.info(
        "load_balance",
        &[
            ("mode", Field::Str(label)),
            ("workers", Field::U64(workers as u64)),
            ("wall_ms", Field::F64(stats.elapsed.as_secs_f64() * 1e3)),
            ("actual_ms", Field::F64(actual)),
            ("best_ms", Field::F64(best)),
            ("imbalance_pct", Field::F64(stats.imbalance() * 100.0)),
            ("steals", Field::U64(stats.steals)),
            ("traces_per_worker", Field::Str(&executed)),
        ],
    );
}

fn measure<P, F>(factory: F, n: usize, workers: usize, seed: u64) -> (RunStats, RunStats)
where
    P: etalumis_core::ProbProgram + Send + 'static,
    F: Fn(usize) -> P + Copy,
{
    let observes = ObserveMap::new();
    let run = |stealing: bool| {
        let mut pool = SimulatorPool::from_factory(workers, factory);
        let runner = BatchRunner::new(RuntimeConfig { workers, stealing });
        let sink = CountingSink::default();
        let stats = runner.run_prior(&mut pool, &observes, n, seed, &sink);
        assert_eq!(sink.count(), n, "runtime dropped traces");
        stats
    };
    (run(false), run(true))
}

fn main() {
    let log = Logger::from_args();
    let quick = std::env::args().any(|a| a == "--quick");
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    // Cap at the core count: oversubscribed workers timeshare cores, and the
    // per-worker busy times then measure OS scheduling noise, not imbalance.
    let mut worker_counts = vec![1, 2, cores];
    worker_counts.retain(|&w| w <= cores.max(2));
    worker_counts.sort_unstable();
    worker_counts.dedup();

    log.section("Figure 4 (measured): work-stealing vs static partitioning, skewed workload");
    let n = if quick { 120 } else { 600 };
    log.info(
        "workload",
        &[
            ("program", Field::Str("heavy-tailed synthetic")),
            ("traces", Field::U64(n as u64)),
            (
                "metric",
                Field::Str("actual = max-worker busy, best = mean; imbalance = actual/best - 1"),
            ),
        ],
    );
    for &workers in &worker_counts {
        let (stat, steal) = measure(|_| skewed_program(), n, workers, 4);
        report(&log, "static", workers, &stat);
        report(&log, "stealing", workers, &steal);
        if workers > 1 {
            let gain = (stat.imbalance() - steal.imbalance()) * 100.0;
            log.info(
                "stealing_gain",
                &[("workers", Field::U64(workers as u64)), ("imbalance_points", Field::F64(gain))],
            );
        }
    }

    log.section("Figure 4 (measured): mini-Sherpa tau model");
    let n_tau = if quick { 256 } else { 1024 };
    log.info(
        "workload",
        &[("program", Field::Str("mini-Sherpa tau")), ("traces", Field::U64(n_tau as u64))],
    );
    for &workers in &worker_counts {
        let (stat, steal) = measure(|_| bench_tau_model(), n_tau, workers, 17);
        report(&log, "static", workers, &stat);
        report(&log, "stealing", workers, &steal);
    }

    log.info(
        "paper_reference",
        &[(
            "fig4",
            Field::Str(
                "dynamic load balancing holds imbalance near ~5% at 2 sockets where a \
                 static split degrades as worker counts grow (~19% at 64)",
            ),
        )],
    );
}
