//! # etalumis-bench
//!
//! Benchmark harnesses regenerating every table and figure of the paper's
//! evaluation (see DESIGN.md §4 for the full index):
//!
//! * Criterion benches (`cargo bench -p etalumis-bench`) reproduce the
//!   point optimizations: blocked Conv3D (8×), scalar 3D MVN PDF (13× /
//!   1.5× pipeline), dladdr-style address caching (5×), sparse+concat
//!   allreduce (4×), sorted/grouped trace I/O (10×), and sorted
//!   sub-minibatching (up to 50× at paper scale).
//! * Binaries (`cargo run -p etalumis-bench --release --bin <name>`)
//!   regenerate Table 2 and Figures 2, 4, 5, 6, 7 and 8.
//!
//! This library holds the shared workload builders, plus [`perf`] — the
//! snapshot flattener behind the `perf_gate` CI regression check.

pub mod perf;

use etalumis_core::Executor;
use etalumis_data::{sort_dataset, TraceDataset, TraceRecord};
use etalumis_runtime::{generate_dataset_parallel, DatasetGenConfig};
use etalumis_simulators::{DetectorConfig, TauDecayConfig, TauDecayModel};
use etalumis_train::IcConfig;
use std::path::PathBuf;

/// Reduced-detector τ model used across benches (structure preserved,
/// volume reduced so laptop runs finish). The per-voxel noise is widened
/// relative to the library default so the laptop-scale posterior is broad
/// enough for finite-budget RMH chains and small IC networks — the paper
/// operates at 15M training traces and ~10⁶ RMH proposals, where a peaked
/// likelihood is affordable.
pub fn bench_tau_model() -> TauDecayModel {
    let config = TauDecayConfig {
        detector: DetectorConfig { depth: 8, height: 13, width: 13, ..Default::default() },
        obs_noise_std: 0.8,
        ..Default::default()
    };
    TauDecayModel::new(config)
}

/// Observation dims of [`bench_tau_model`].
pub const BENCH_OBS_DIMS: [usize; 3] = [8, 13, 13];

/// IC config matched to the bench τ model.
pub fn bench_ic_config(seed: u64) -> IcConfig {
    IcConfig::small(BENCH_OBS_DIMS, seed)
}

/// In-memory prior trace records from the bench τ model.
pub fn tau_records(n: usize, seed0: u64) -> Vec<TraceRecord> {
    let mut m = bench_tau_model();
    (0..n)
        .map(|s| TraceRecord::from_trace(&Executor::sample_prior(&mut m, seed0 + s as u64), true))
        .collect()
}

/// A scratch directory unique to this process.
pub fn scratch_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("etalumis_bench_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).expect("scratch dir"); // etalumis: allow(panic-freedom, reason = "bench harness setup; abort on scratch-dir failure is the harness contract")
    d
}

/// Generate + sort an on-disk τ dataset for training benches, on the
/// parallel runtime. `ordered` mode keeps the dataset byte-identical for
/// any worker count, so bench numbers stay comparable run-to-run. Returns
/// (sorted dataset, scratch dir to delete afterwards).
pub fn tau_dataset(n: usize, per_shard: usize, tag: &str) -> (TraceDataset, PathBuf) {
    let dir = scratch_dir(tag);
    let cfg = DatasetGenConfig {
        n,
        traces_per_shard: per_shard,
        partitions: 2,
        workers: 0,
        seed: 17,
        ordered: true,
        ..Default::default()
    };
    let ds = generate_dataset_parallel(|_| bench_tau_model(), &cfg, &dir).expect("generate"); // etalumis: allow(panic-freedom, reason = "bench harness setup; abort on generation failure is the harness contract")
    let sorted = sort_dataset(&ds, &dir.join("sorted"), per_shard).expect("sort"); // etalumis: allow(panic-freedom, reason = "bench harness setup; abort on sort failure is the harness contract")
    (sorted, dir)
}

/// The bench binaries' structured logger (re-exported from
/// `etalumis-telemetry`): human-readable progress on stderr, one JSON
/// object per event on stdout when the binary is invoked with `--json`.
/// `Logger::section` and `Logger::speedup` replace the old free-form
/// `rule` / `speedup_line` println helpers.
pub use etalumis_telemetry::{Field, Level, Logger};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_model_produces_expected_observation_shape() {
        let mut m = bench_tau_model();
        let t = Executor::sample_prior(&mut m, 1);
        assert_eq!(t.first_observed().unwrap().as_tensor().shape, BENCH_OBS_DIMS.to_vec());
    }

    #[test]
    fn tau_records_builder_works() {
        let recs = tau_records(5, 100);
        assert_eq!(recs.len(), 5);
        assert!(recs.iter().all(|r| r.num_controlled() >= 4));
    }
}
