//! PPX protocol microbenchmarks: codec throughput and full round-trip rate
//! through the in-process transport (Figure 1's message path).

use criterion::{criterion_group, criterion_main, Criterion};
use etalumis_core::{Executor, ObserveMap, PriorProposer};
use etalumis_distributions::{Distribution, TensorValue, Value};
use etalumis_ppx::wire::{decode, encode};
use etalumis_ppx::{InProcTransport, Message, RemoteModel, SimulatorServer};
use etalumis_simulators::BranchingModel;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocol");
    group.sample_size(20).measurement_time(Duration::from_secs(3));
    // Codec: a Sample message (the hot message) and a tensor RunResult.
    let sample = Message::Sample {
        address: "tau/kinematics/frac_cut0[Uniform]".into(),
        name: "frac_cut0".into(),
        distribution: Distribution::Uniform { low: 0.0, high: 1.0 },
        control: true,
        replace: true,
    };
    group.bench_function("encode_decode_sample", |b| {
        b.iter(|| {
            let f = encode(black_box(&sample));
            black_box(decode(&f).unwrap())
        })
    });
    let tensor_msg =
        Message::RunResult { result: Value::Tensor(TensorValue::zeros(vec![20, 35, 35])) };
    group.bench_function("encode_decode_voxel_tensor", |b| {
        b.iter(|| {
            let f = encode(black_box(&tensor_msg));
            black_box(decode(&f).unwrap())
        })
    });
    // Full protocol round trip: one prior simulator execution over inproc.
    group.bench_function("full_trace_over_inproc", |b| {
        let (ctrl, sim) = InProcTransport::pair();
        std::thread::spawn(move || {
            let mut server = SimulatorServer::new("bench", BranchingModel::standard());
            let mut t = sim;
            let _ = server.serve(&mut t);
        });
        let mut model = RemoteModel::connect(ctrl, "bench").unwrap();
        let observes = ObserveMap::new();
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        b.iter(|| {
            let mut prior = PriorProposer;
            black_box(Executor::execute(&mut model, &mut prior, &observes, &mut rng).log_prior)
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
