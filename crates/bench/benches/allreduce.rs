//! §4.4.4 ablation: gradient allreduce strategies across rank threads.
//!
//! Paper: "changing Etalumis to reduce only the non-null gradients gives a
//! **4× improvement in allreduce time**. Tensor concatenation improves
//! overall performance by an additional 4% on one node" (growing with rank
//! count). The workload mirrors the IC network: many small address-specific
//! tensors of which each rank touched only a few, plus large shared-core
//! tensors.

use criterion::{criterion_group, criterion_main, Criterion};
use etalumis_train::{AllReduceCtx, AllReduceStrategy};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

/// Build a gradient set shaped like the IC net: 2 big core tensors + many
/// small per-address tensors, only `active` of which are non-null per rank.
fn make_grads(rank: usize, n_small: usize, active: usize) -> Vec<Vec<f32>> {
    let mut out = Vec::with_capacity(n_small + 2);
    out.push(vec![1.0f32; 200_000]); // LSTM core
    out.push(vec![0.5f32; 50_000]); // CNN
    for i in 0..n_small {
        let on = (i + rank * 7) % n_small < active;
        out.push(vec![if on { 0.1 } else { 0.0 }; 600]);
    }
    out
}

fn run_strategy(strategy: AllReduceStrategy, iters: usize) {
    let ctx = Arc::new(AllReduceCtx::new(2));
    std::thread::scope(|s| {
        for rank in 0..2 {
            let ctx = Arc::clone(&ctx);
            s.spawn(move || {
                let mut grads = make_grads(rank, 400, 30);
                for _ in 0..iters {
                    let mut list: Vec<(&str, &mut [f32])> =
                        grads.iter_mut().map(|g| ("g", g.as_mut_slice())).collect();
                    black_box(ctx.allreduce_gradients(&mut list, strategy));
                }
            });
        }
    });
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("allreduce");
    group.sample_size(10).measurement_time(Duration::from_secs(4));
    group.bench_function("dense_per_tensor", |b| {
        b.iter(|| run_strategy(AllReduceStrategy::DensePerTensor, 3))
    });
    group.bench_function("sparse_per_tensor", |b| {
        b.iter(|| run_strategy(AllReduceStrategy::SparsePerTensor, 3))
    });
    group.bench_function("sparse_concat", |b| {
        b.iter(|| run_strategy(AllReduceStrategy::SparseConcat, 3))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
