//! §4.4.3 ablation: trace dataset I/O patterns.
//!
//! Paper: pre-sorting traces by type and grouping small files into large
//! ones turned random small reads into sequential scans, cutting I/O from
//! >50% of runtime to <5% — a **10× I/O speedup**. We compare random
//! per-record access across many small shards against sequential scans of
//! few large shards, on identical records.

use criterion::{criterion_group, criterion_main, Criterion};
use etalumis_bench::tau_records;
use etalumis_data::{ShardReader, ShardWriter};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::hint::black_box;
use std::path::PathBuf;
use std::time::Duration;

fn write_shards(
    records: &[etalumis_data::TraceRecord],
    per_shard: usize,
    dir: &PathBuf,
) -> Vec<PathBuf> {
    std::fs::create_dir_all(dir).unwrap();
    let mut paths = Vec::new();
    for (i, chunk) in records.chunks(per_shard).enumerate() {
        let p = dir.join(format!("s{i:04}.etlm"));
        let mut w = ShardWriter::new(&p, true);
        for r in chunk {
            w.push(r.clone());
        }
        w.finish().unwrap();
        paths.push(p);
    }
    paths
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_io");
    group.sample_size(10).measurement_time(Duration::from_secs(5));
    let records = tau_records(400, 500);
    let base = etalumis_bench::scratch_dir("io");
    // "Before": many small shards, random access order (shuffled reads).
    let small = write_shards(&records, 20, &base.join("small"));
    // "After": few large shards, sequential scan.
    let large = write_shards(&records, 200, &base.join("large"));
    let mut order: Vec<(usize, usize)> =
        (0..small.len()).flat_map(|s| (0..20).map(move |r| (s, r))).collect();
    order.shuffle(&mut rand::rngs::StdRng::seed_from_u64(1));
    group.bench_function("random_small_shards", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for &(s, r) in &order {
                // Random access pattern: reopen per request, seek per record
                // (what shuffling over a shelve-per-file layout does).
                let mut reader = ShardReader::open(&small[s]).unwrap();
                total += reader.get(r).unwrap().entries.len();
            }
            black_box(total)
        })
    });
    group.bench_function("sequential_large_shards", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for p in &large {
                let mut reader = ShardReader::open(p).unwrap();
                for rec in reader.read_all().unwrap() {
                    total += rec.entries.len();
                }
            }
            black_box(total)
        })
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&base);
}

criterion_group!(benches, bench);
criterion_main!(benches);
