//! Serial executor vs pooled work-stealing trace generation (§4.4, Fig. 4).
//!
//! On a multi-core host the pooled runner should beat the serial executor
//! roughly linearly in cores for the simulator-bound mini-Sherpa τ model;
//! on a single core it shows the scheduler's overhead is within noise.
//!
//! Run: `cargo bench -p etalumis-bench --bench runtime` (add `-- --quick`
//! for the CI smoke mode).

use criterion::{criterion_group, criterion_main, Criterion};
use etalumis_bench::bench_tau_model;
use etalumis_core::{Executor, ObserveMap};
use etalumis_runtime::{BatchRunner, CountingSink, RuntimeConfig, SimulatorPool};

const TRACES_PER_ITER: usize = 16;

fn bench_trace_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_generation");
    group.sample_size(10);

    group.bench_function("serial_executor", |b| {
        let mut model = bench_tau_model();
        let mut seed = 0u64;
        b.iter(|| {
            let mut last = 0usize;
            for _ in 0..TRACES_PER_ITER {
                let t = Executor::sample_prior(&mut model, seed);
                last += t.len();
                seed += 1;
            }
            last
        });
    });

    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    for workers in [2usize, cores.max(2)] {
        let id = format!("pooled_{workers}workers");
        group.bench_function(&id, |b| {
            let mut pool = SimulatorPool::from_factory(workers, |_| bench_tau_model());
            let runner = BatchRunner::new(RuntimeConfig { workers, stealing: true });
            let observes = ObserveMap::new();
            let mut seed = 0u64;
            b.iter(|| {
                let sink = CountingSink::default();
                let stats = runner.run_prior(&mut pool, &observes, TRACES_PER_ITER, seed, &sink);
                seed += 1;
                assert_eq!(sink.count(), TRACES_PER_ITER);
                stats.total_executed()
            });
        });
        if cores.max(2) == 2 {
            break; // both configurations are identical on a dual-core host
        }
    }
    group.finish();
}

criterion_group!(benches, bench_trace_generation);
criterion_main!(benches);
