//! Serial executor vs pooled work-stealing trace generation (§4.4, Fig. 4).
//!
//! On a multi-core host the pooled runner should beat the serial executor
//! roughly linearly in cores for the simulator-bound mini-Sherpa τ model;
//! on a single core it shows the scheduler's overhead is within noise.
//!
//! Run: `cargo bench -p etalumis-bench --bench runtime` (add `-- --quick`
//! for the CI smoke mode). The final "bench" writes a `BENCH_runtime.json`
//! snapshot at the workspace root (serial vs pooled vs multiplexed
//! traces/sec) for CI to archive and gate on.

use criterion::{criterion_group, criterion_main, Criterion};
use etalumis_bench::bench_tau_model;
use etalumis_core::{Executor, ObserveMap};
use etalumis_ppx::{InProcMuxEndpoint, MuxEndpoint, SimulatorServer};
use etalumis_runtime::{BatchRunner, CountingSink, MuxSimulatorPool, RuntimeConfig, SimulatorPool};
use std::path::PathBuf;
use std::time::Instant;

const TRACES_PER_ITER: usize = 16;

fn quick() -> bool {
    std::env::args().any(|a| a == "--quick")
}

fn bench_trace_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_generation");
    group.sample_size(10);

    group.bench_function("serial_executor", |b| {
        let mut model = bench_tau_model();
        let mut seed = 0u64;
        b.iter(|| {
            let mut last = 0usize;
            for _ in 0..TRACES_PER_ITER {
                let t = Executor::sample_prior(&mut model, seed);
                last += t.len();
                seed += 1;
            }
            last
        });
    });

    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    for workers in [2usize, cores.max(2)] {
        let id = format!("pooled_{workers}workers");
        group.bench_function(&id, |b| {
            let mut pool = SimulatorPool::from_factory(workers, |_| bench_tau_model());
            let runner = BatchRunner::new(RuntimeConfig { workers, stealing: true });
            let observes = ObserveMap::new();
            let mut seed = 0u64;
            b.iter(|| {
                let sink = CountingSink::default();
                let stats = runner.run_prior(&mut pool, &observes, TRACES_PER_ITER, seed, &sink);
                seed += 1;
                assert_eq!(sink.count(), TRACES_PER_ITER);
                stats.total_executed()
            });
        });
        if cores.max(2) == 2 {
            break; // both configurations are identical on a dual-core host
        }
    }
    group.finish();
}

fn spawn_mux_server() -> InProcMuxEndpoint {
    let (ep, sim_side) = InProcMuxEndpoint::pair();
    std::thread::spawn(move || {
        let mut server = SimulatorServer::new("bench-runtime", bench_tau_model());
        let mut t = sim_side;
        let _ = server.serve(&mut t);
    });
    ep
}

/// Not a timing loop: one calibrated run of each execution mode,
/// snapshotted to `BENCH_runtime.json` at the workspace root so CI can
/// archive the numbers and fail if the suite stops producing them.
fn emit_snapshot(_c: &mut Criterion) {
    let n = if quick() { 256 } else { 2048 };
    let workers = RuntimeConfig::default().resolved_workers();
    let observes = ObserveMap::new();

    let t0 = Instant::now();
    let mut model = bench_tau_model();
    for seed in 0..n {
        let _ = Executor::sample_prior(&mut model, seed as u64);
    }
    let serial_secs = t0.elapsed().as_secs_f64();

    let mut pool = SimulatorPool::from_factory(workers, |_| bench_tau_model());
    let runner = BatchRunner::new(RuntimeConfig { workers, stealing: true });
    let t0 = Instant::now();
    let sink = CountingSink::default();
    runner.run_prior(&mut pool, &observes, n, 1, &sink);
    let pooled_secs = t0.elapsed().as_secs_f64();
    assert_eq!(sink.count(), n);

    let sessions = (workers * 2).max(4);
    let mut mux = MuxSimulatorPool::connect(sessions, "bench-runtime", |_| {
        Ok(Box::new(spawn_mux_server()) as Box<dyn MuxEndpoint>)
    })
    .expect("mux pool connect");
    let t0 = Instant::now();
    let sink = CountingSink::default();
    runner.run_mux_prior(&mut mux, &observes, n, 1, &sink);
    let mux_secs = t0.elapsed().as_secs_f64();
    assert_eq!(sink.count(), n);

    let json = format!(
        "{{\n  \"bench\": \"runtime\",\n  \"model\": \"tau_decay\",\n  \"n_traces\": {n},\n  \
         \"workers\": {workers},\n  \"mux_sessions\": {sessions},\n  \"quick\": {},\n  \
         \"serial\": {{\n    \"total_secs\": {serial_secs:.6},\n    \
         \"traces_per_sec\": {:.1}\n  }},\n  \"pooled\": {{\n    \
         \"total_secs\": {pooled_secs:.6},\n    \"traces_per_sec\": {:.1}\n  }},\n  \
         \"mux\": {{\n    \"total_secs\": {mux_secs:.6},\n    \
         \"traces_per_sec\": {:.1}\n  }},\n  \"pooled_speedup\": {:.3}\n}}\n",
        quick(),
        n as f64 / serial_secs,
        n as f64 / pooled_secs,
        n as f64 / mux_secs,
        serial_secs / pooled_secs,
    );
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_runtime.json");
    std::fs::write(&path, &json).expect("write BENCH_runtime.json");
    println!(
        "snapshot -> {} (serial {:.2}s, pooled {:.2}s, mux {:.2}s)",
        path.display(),
        serial_secs,
        pooled_secs,
        mux_secs
    );
}

criterion_group!(benches, bench_trace_generation, emit_snapshot);
criterion_main!(benches);
