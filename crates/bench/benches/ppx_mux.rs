//! Latency hiding through connection multiplexing (§4.1's controller↔fleet
//! shape): with slow simulators, one reactor thread driving 8 sessions
//! should approach the throughput of 8 dedicated blocking threads — and beat
//! a single blocking connection by roughly the session count.
//!
//! Three shapes over the same slow simulator (≈1 ms per trace inside the
//! program body):
//!
//! * `blocking_1thread_1conn` — the baseline: one connection, one thread,
//!   every simulator sleep stalls the controller.
//! * `mux_1thread_8conns` — the tentpole: one reactor thread, eight
//!   sessions, sleeps overlap.
//! * `blocking_8threads_8conns` — the thread-per-connection ceiling.
//!
//! Run: `cargo bench -p etalumis-bench --bench ppx_mux` (add `-- --quick`
//! for the CI smoke mode). A headline `latency hiding:` line prints the
//! measured mux-vs-single-blocking speedup.

use criterion::{criterion_group, criterion_main, Criterion};
use etalumis_core::{FnProgram, ObserveMap, SimCtx, SimCtxExt};
use etalumis_distributions::{Distribution, Value};
use etalumis_ppx::{InProcMuxEndpoint, InProcTransport, MuxEndpoint, RemoteModel, SimulatorServer};
use etalumis_runtime::{BatchRunner, CountingSink, MuxSimulatorPool, RuntimeConfig, SimulatorPool};
use std::time::{Duration, Instant};

const TRACES: usize = 32;
const SESSIONS: usize = 8;
const SIM_LATENCY: Duration = Duration::from_millis(1);

fn slow_model() -> FnProgram<impl FnMut(&mut dyn SimCtx) -> Value> {
    FnProgram::new("slow_sim", |ctx: &mut dyn SimCtx| {
        let x = ctx.sample_f64(&Distribution::Normal { mean: 0.0, std: 1.0 }, "x");
        // The simulator's compute time, spent on the *simulator's* thread —
        // exactly what a multiplexed controller can hide.
        std::thread::sleep(SIM_LATENCY);
        ctx.observe(&Distribution::Normal { mean: x, std: 0.5 }, "y");
        Value::Real(x)
    })
}

fn spawn_mux_server() -> InProcMuxEndpoint {
    let (ep, sim_side) = InProcMuxEndpoint::pair();
    std::thread::spawn(move || {
        let mut server = SimulatorServer::new("bench-mux", slow_model());
        let mut t = sim_side;
        let _ = server.serve(&mut t);
    });
    ep
}

fn spawn_blocking_server() -> InProcTransport {
    let (controller_side, sim_side) = InProcTransport::pair();
    std::thread::spawn(move || {
        let mut server = SimulatorServer::new("bench-mux", slow_model());
        let mut t = sim_side;
        let _ = server.serve(&mut t);
    });
    controller_side
}

fn blocking_pool(conns: usize) -> SimulatorPool {
    SimulatorPool::connect_ppx(conns, |_| RemoteModel::connect(spawn_blocking_server(), "bench"))
        .unwrap()
}

fn mux_pool(sessions: usize) -> MuxSimulatorPool {
    MuxSimulatorPool::connect(sessions, "bench", |_| {
        Ok(Box::new(spawn_mux_server()) as Box<dyn MuxEndpoint>)
    })
    .unwrap()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ppx_mux");
    group.sample_size(10).measurement_time(Duration::from_secs(2));
    let observes = ObserveMap::new();

    group.bench_function("blocking_1thread_1conn", |b| {
        let mut pool = blocking_pool(1);
        let runner = BatchRunner::new(RuntimeConfig { workers: 1, stealing: true });
        let mut seed = 0u64;
        b.iter(|| {
            let sink = CountingSink::default();
            let stats = runner.run_prior(&mut pool, &observes, TRACES, seed, &sink);
            seed += 1;
            assert_eq!(sink.count(), TRACES);
            stats.total_executed()
        });
    });

    group.bench_function("mux_1thread_8conns", |b| {
        let mut pool = mux_pool(SESSIONS);
        let runner = BatchRunner::new(RuntimeConfig { workers: 1, stealing: true });
        let mut seed = 0u64;
        b.iter(|| {
            let sink = CountingSink::default();
            let stats = runner.run_mux_prior(&mut pool, &observes, TRACES, seed, &sink);
            seed += 1;
            assert_eq!(sink.count(), TRACES);
            assert!(stats.failures.is_empty());
            stats.total_executed()
        });
    });

    group.bench_function("blocking_8threads_8conns", |b| {
        let mut pool = blocking_pool(SESSIONS);
        let runner = BatchRunner::new(RuntimeConfig { workers: SESSIONS, stealing: true });
        let mut seed = 0u64;
        b.iter(|| {
            let sink = CountingSink::default();
            let stats = runner.run_prior(&mut pool, &observes, TRACES, seed, &sink);
            seed += 1;
            assert_eq!(sink.count(), TRACES);
            stats.total_executed()
        });
    });

    group.finish();

    // Headline number: one measured batch per shape, outside the sampling
    // harness, so even `--quick` smoke runs print the latency-hiding ratio.
    let time_one = |f: &mut dyn FnMut() -> usize| {
        let t0 = Instant::now();
        let n = f();
        (t0.elapsed(), n)
    };
    let mut single = blocking_pool(1);
    let single_runner = BatchRunner::new(RuntimeConfig { workers: 1, stealing: true });
    let (t_single, _) = time_one(&mut || {
        let sink = CountingSink::default();
        single_runner.run_prior(&mut single, &observes, TRACES, 99, &sink).total_executed()
    });
    let mut muxed = mux_pool(SESSIONS);
    let (t_mux, _) = time_one(&mut || {
        let sink = CountingSink::default();
        single_runner.run_mux_prior(&mut muxed, &observes, TRACES, 99, &sink).total_executed()
    });
    println!(
        "latency hiding: 1-thread mux over {SESSIONS} sessions is {:.1}x a single blocking \
         connection ({:?} vs {:?} for {TRACES} traces of ~{SIM_LATENCY:?} each)",
        t_single.as_secs_f64() / t_mux.as_secs_f64(),
        t_mux,
        t_single,
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
