//! §4.4.1 / §4.4.3 ablation: sorted vs shuffled minibatches.
//!
//! Paper: "minibatches containing more than one trace type do not allow for
//! effective parallelization and vectorization"; sorting traces and
//! chunking them into (mostly) single-type minibatches "significantly
//! improves the training speed (up to 50× in our experiments)". We time one
//! training step on a single-type minibatch against the same number of
//! traces spread over many types (forcing one sub-minibatch per type).

use criterion::{criterion_group, criterion_main, Criterion};
use etalumis_bench::{bench_ic_config, tau_records};
use etalumis_train::{accumulate_minibatch, sub_minibatches, IcNetwork};
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("subminibatch");
    group.sample_size(10).measurement_time(Duration::from_secs(5));
    let records = tau_records(512, 900);
    let mut net = IcNetwork::new(bench_ic_config(2));
    net.pregenerate(records.iter());
    // Sorted-world minibatch: 32 traces of the most common trace type.
    let subs = sub_minibatches(&records);
    let dominant: Vec<_> = subs[0].iter().map(|r| (*r).clone()).take(32).collect();
    assert!(dominant.len() >= 16, "need a dominant trace type");
    // Shuffled-world minibatch: 32 traces drawn across types (round-robin
    // over the sub-minibatch groups maximizes heterogeneity).
    let mut mixed = Vec::new();
    let mut k = 0;
    'outer: loop {
        for sub in &subs {
            if let Some(r) = sub.get(k) {
                mixed.push((*r).clone());
                if mixed.len() == 32 {
                    break 'outer;
                }
            }
        }
        k += 1;
        if k > records.len() {
            break;
        }
    }
    let n_types = sub_minibatches(&mixed).len();
    println!("mixed minibatch spans {n_types} trace types; sorted spans 1");
    group.bench_function("sorted_single_type_step", |b| {
        b.iter(|| {
            let res = accumulate_minibatch(&mut net, black_box(&dominant));
            black_box(res.loss)
        })
    });
    group.bench_function("shuffled_multi_type_step", |b| {
        b.iter(|| {
            let res = accumulate_minibatch(&mut net, black_box(&mixed));
            black_box(res.loss)
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
