//! §4.4.1 / §4.4.3 ablation: sorted vs shuffled minibatches.
//!
//! Paper: "minibatches containing more than one trace type do not allow for
//! effective parallelization and vectorization"; sorting traces and
//! chunking them into (mostly) single-type minibatches "significantly
//! improves the training speed (up to 50× in our experiments)". We time one
//! training step on a single-type minibatch against the same number of
//! traces spread over many types (forcing one sub-minibatch per type).

use criterion::{criterion_group, criterion_main, Criterion};
use etalumis_bench::{bench_ic_config, tau_records};
use etalumis_nn::{Adam, LrSchedule};
use etalumis_train::{accumulate_minibatch, sub_minibatches, IcNetwork, PhaseTimings, Trainer};
use std::hint::black_box;
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn quick() -> bool {
    std::env::args().any(|a| a == "--quick")
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("subminibatch");
    group.sample_size(10).measurement_time(Duration::from_secs(5));
    let records = tau_records(512, 900);
    let mut net = IcNetwork::new(bench_ic_config(2));
    net.pregenerate(records.iter());
    // Sorted-world minibatch: 32 traces of the most common trace type.
    let subs = sub_minibatches(&records);
    let dominant: Vec<_> = subs[0].iter().map(|r| (*r).clone()).take(32).collect();
    assert!(dominant.len() >= 16, "need a dominant trace type");
    // Shuffled-world minibatch: 32 traces drawn across types (round-robin
    // over the sub-minibatch groups maximizes heterogeneity).
    let mut mixed = Vec::new();
    let mut k = 0;
    'outer: loop {
        for sub in &subs {
            if let Some(r) = sub.get(k) {
                mixed.push((*r).clone());
                if mixed.len() == 32 {
                    break 'outer;
                }
            }
        }
        k += 1;
        if k > records.len() {
            break;
        }
    }
    let n_types = sub_minibatches(&mixed).len();
    println!("mixed minibatch spans {n_types} trace types; sorted spans 1");
    group.bench_function("sorted_single_type_step", |b| {
        b.iter(|| {
            let res = accumulate_minibatch(&mut net, black_box(&dominant));
            black_box(res.loss)
        })
    });
    group.bench_function("shuffled_multi_type_step", |b| {
        b.iter(|| {
            let res = accumulate_minibatch(&mut net, black_box(&mixed));
            black_box(res.loss)
        })
    });
    group.finish();
}

/// Not a timing loop: one calibrated training run snapshotted to
/// `BENCH_train.json` at the workspace root (steps/sec plus the per-phase
/// wall-time breakdown the trainer already measures) for CI to archive and
/// gate on.
fn emit_snapshot(_c: &mut Criterion) {
    let steps = if quick() { 10 } else { 40 };
    let bsz = 32;
    let records = tau_records(256, 1700);
    let mut net = IcNetwork::new(bench_ic_config(3));
    net.pregenerate(records.iter());
    let mut trainer = Trainer::new(net, Adam::new(LrSchedule::Constant(1e-3)));
    trainer.grad_clip = Some(10.0);
    let mut phases = PhaseTimings::default();
    let mut subs_total = 0usize;
    let t0 = Instant::now();
    for step in 0..steps {
        let lo = (step * bsz) % records.len();
        let hi = (lo + bsz).min(records.len());
        let res = trainer.step(&records[lo..hi]);
        phases.forward += res.timings.forward;
        phases.backward += res.timings.backward;
        phases.optimizer += res.timings.optimizer;
        subs_total += res.sub_minibatches;
    }
    let wall_secs = t0.elapsed().as_secs_f64();
    let steps_per_sec = steps as f64 / wall_secs;
    let traces_per_sec = (steps * bsz) as f64 / wall_secs;
    let json = format!(
        "{{\n  \"bench\": \"train\",\n  \"model\": \"tau_decay\",\n  \"steps\": {steps},\n  \
         \"minibatch\": {bsz},\n  \"quick\": {},\n  \"wall_secs\": {wall_secs:.6},\n  \
         \"steps_per_sec\": {steps_per_sec:.3},\n  \"traces_per_sec\": {traces_per_sec:.1},\n  \
         \"mean_sub_minibatches\": {:.2},\n  \"phases\": {{\n    \
         \"forward_secs\": {:.6},\n    \"backward_secs\": {:.6},\n    \
         \"optimizer_secs\": {:.6},\n    \"other_secs\": {:.6}\n  }}\n}}\n",
        quick(),
        subs_total as f64 / steps as f64,
        phases.forward,
        phases.backward,
        phases.optimizer,
        (wall_secs - phases.forward - phases.backward - phases.optimizer).max(0.0),
    );
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_train.json");
    std::fs::write(&path, &json).expect("write BENCH_train.json");
    println!(
        "snapshot -> {} ({steps_per_sec:.2} steps/s, fwd {:.2}s / bwd {:.2}s / opt {:.2}s)",
        path.display(),
        phases.forward,
        phases.backward,
        phases.optimizer
    );
}

criterion_group!(benches, bench, emit_snapshot);
criterion_main!(benches);
