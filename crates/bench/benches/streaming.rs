//! Offline staged pipeline vs the streaming generate→train pipeline.
//!
//! The offline mode pays for a full materialized dataset (generate every
//! trace to shards, then train over them); the streaming mode overlaps the
//! two phases through the bounded trace channel, so end-to-end wall time
//! approaches max(generate, train) instead of their sum. The criterion
//! group times the two pipelines; the final "bench" writes a
//! `BENCH_streaming.json` snapshot at the workspace root (traces/sec for
//! both modes plus channel back-pressure counters) for CI to archive and
//! gate on.
//!
//! Run: `cargo bench -p etalumis-bench --bench streaming` (add `-- --quick`
//! for the CI smoke mode).

use criterion::{criterion_group, criterion_main, Criterion};
use etalumis_data::{ChannelStats, TraceChannel};
use etalumis_nn::{Adam, LrSchedule};
use etalumis_runtime::{
    generate_dataset_parallel, stream_prior_traces, DatasetGenConfig, RuntimeConfig,
};
use etalumis_simulators::BranchingModel;
use etalumis_train::{
    train_stream, train_stream_offline, IcConfig, IcNetwork, StreamTrainConfig, Trainer,
};
use std::path::PathBuf;
use std::time::Instant;

const CAPACITY: usize = 128;

fn quick() -> bool {
    std::env::args().any(|a| a == "--quick")
}

fn n_traces() -> usize {
    if quick() {
        1500
    } else {
        8000
    }
}

fn gen_cfg(n: usize, workers: usize) -> DatasetGenConfig {
    DatasetGenConfig {
        n,
        traces_per_shard: 500,
        partitions: 1,
        workers,
        seed: 7,
        ..Default::default()
    }
}

fn train_cfg() -> StreamTrainConfig {
    StreamTrainConfig { batch: 32, spill_after: 256, warmup: 128, ..Default::default() }
}

fn new_trainer() -> Trainer<Adam> {
    Trainer::new(
        IcNetwork::new(IcConfig::small([1, 1, 1], 11)),
        Adam::new(LrSchedule::Constant(1e-3)),
    )
}

fn tmpdir(tag: &str) -> PathBuf {
    let d =
        std::env::temp_dir().join(format!("etalumis_bench_stream_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// Offline staged pipeline: materialize every trace to shards, then train
/// over the dataset. Returns (generate secs, train secs).
fn run_offline(n: usize, workers: usize) -> (f64, f64) {
    let dir = tmpdir("offline");
    let t0 = Instant::now();
    let ds = generate_dataset_parallel(|_| BranchingModel::standard(), &gen_cfg(n, workers), &dir)
        .expect("offline generation");
    let gen_secs = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let mut trainer = new_trainer();
    train_stream_offline(&mut trainer, &ds, &train_cfg(), CAPACITY).expect("offline training");
    let train_secs = t1.elapsed().as_secs_f64();
    drop(ds);
    let _ = std::fs::remove_dir_all(&dir);
    (gen_secs, train_secs)
}

/// Streaming pipeline: generation and training overlap through the bounded
/// channel. Returns (total secs, channel stats).
fn run_streaming(n: usize, workers: usize) -> (f64, ChannelStats) {
    let chan = TraceChannel::bounded(CAPACITY);
    let t0 = Instant::now();
    std::thread::scope(|s| {
        s.spawn(|| {
            stream_prior_traces(|_| BranchingModel::standard(), &gen_cfg(n, workers), &chan)
                .expect("streaming generation");
        });
        let mut trainer = new_trainer();
        train_stream(&mut trainer, &chan, &train_cfg());
    });
    (t0.elapsed().as_secs_f64(), chan.stats())
}

fn bench_pipelines(c: &mut Criterion) {
    let n = if quick() { 400 } else { 1500 };
    let workers = RuntimeConfig::default().resolved_workers();
    let mut group = c.benchmark_group("generate_train_pipeline");
    group.sample_size(10);
    group.bench_function("offline_staged", |b| b.iter(|| run_offline(n, workers)));
    group.bench_function("streaming_overlapped", |b| b.iter(|| run_streaming(n, workers)));
    group.finish();
}

/// Not a timing loop: one calibrated run of each pipeline, snapshotted to
/// `BENCH_streaming.json` at the workspace root so CI can archive the
/// numbers and fail if the suite stops producing them.
fn emit_snapshot(_c: &mut Criterion) {
    let n = n_traces();
    let workers = RuntimeConfig::default().resolved_workers();
    let (gen_secs, train_secs) = run_offline(n, workers);
    let (stream_secs, stats) = run_streaming(n, workers);
    let offline_total = gen_secs + train_secs;
    let json = format!(
        "{{\n  \"bench\": \"streaming\",\n  \"model\": \"branching\",\n  \"n_traces\": {n},\n  \
         \"workers\": {workers},\n  \"quick\": {},\n  \"offline\": {{\n    \
         \"generate_secs\": {gen_secs:.6},\n    \"train_secs\": {train_secs:.6},\n    \
         \"total_secs\": {offline_total:.6},\n    \"traces_per_sec\": {:.1}\n  }},\n  \
         \"streaming\": {{\n    \"total_secs\": {stream_secs:.6},\n    \
         \"traces_per_sec\": {:.1},\n    \"channel_capacity\": {CAPACITY},\n    \
         \"max_occupancy\": {},\n    \"blocked_sends\": {},\n    \"blocked_recvs\": {}\n  }},\n  \
         \"end_to_end_speedup\": {:.3}\n}}\n",
        quick(),
        n as f64 / offline_total,
        n as f64 / stream_secs,
        stats.max_occupancy,
        stats.blocked_sends,
        stats.blocked_recvs,
        offline_total / stream_secs,
    );
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_streaming.json");
    std::fs::write(&path, &json).expect("write BENCH_streaming.json");
    println!(
        "snapshot -> {} (offline {:.2}s, streaming {:.2}s, speedup {:.2}x)",
        path.display(),
        offline_total,
        stream_secs,
        offline_total / stream_secs
    );
}

criterion_group!(benches, bench_pipelines, emit_snapshot);
criterion_main!(benches);
