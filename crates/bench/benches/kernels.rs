//! Raw kernel throughput: GEMM and Conv3d GFLOP/s per backend.
//!
//! The compute spine of training is the blocked GEMM (LSTM + dense layers)
//! and the channels-blocked Conv3d (observation encoder). This bench times
//! each micro-kernel under every dispatch choice — scalar fallback, AVX2+FMA
//! (when the host has it), and the pooled-parallel path — and snapshots
//! analytic GFLOP/s (via [`etalumis_tensor::flops`]) to `BENCH_kernels.json`
//! at the workspace root for CI to archive and gate with `perf_gate`.
//!
//! All backends produce bit-identical results (see the tensor crate's
//! `kernel_identity` proptests); this bench measures only speed.

use criterion::{criterion_group, criterion_main, Criterion};
use etalumis_tensor::conv::conv3d_blocked;
use etalumis_tensor::gemm::matmul;
use etalumis_tensor::simd::{avx2_available, set_backend_override, Backend};
use etalumis_tensor::{pool, Conv3dSpec, Tensor};
use std::hint::black_box;
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn quick() -> bool {
    std::env::args().any(|a| a == "--quick")
}

fn rand_tensor(shape: &[usize], seed: u64) -> Tensor {
    let mut s = seed.wrapping_add(0x9E3779B97F4A7C15);
    Tensor::from_fn(shape, |_| {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        ((s >> 11) as f64 / (1u64 << 53) as f64) as f32 - 0.5
    })
}

/// Time `f` for `reps` calls and return GFLOP/s given flops per call.
fn gflops(reps: usize, flops_per_call: u64, mut f: impl FnMut()) -> f64 {
    // One warmup call (page in buffers, resolve dispatch).
    f();
    let t0 = Instant::now();
    for _ in 0..reps {
        f();
    }
    let secs = t0.elapsed().as_secs_f64().max(1e-9);
    (reps as u64 * flops_per_call) as f64 / secs / 1e9
}

/// The three measured configurations: (label, backend override, parallel).
fn configs() -> Vec<(&'static str, Option<Backend>, bool)> {
    let mut v = vec![("scalar", Some(Backend::Scalar), false)];
    if avx2_available() {
        v.push(("avx2", Some(Backend::Avx2Fma), false));
        v.push(("avx2_parallel", Some(Backend::Avx2Fma), true));
    } else {
        v.push(("scalar_parallel", Some(Backend::Scalar), true));
    }
    v
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    let n = if quick() { 128 } else { 256 };
    let a = rand_tensor(&[n, n], 1);
    let b = rand_tensor(&[n, n], 2);
    for (label, backend, parallel) in configs() {
        set_backend_override(backend);
        pool::set_parallel(parallel);
        group.bench_function(&format!("gemm_{n}_{label}"), |bch| {
            bch.iter(|| black_box(matmul(black_box(&a), black_box(&b))))
        });
    }
    set_backend_override(None);
    pool::set_parallel(true);
    group.finish();
}

/// Not a timing loop: manual throughput sweep snapshotted to
/// `BENCH_kernels.json` (GEMM + Conv3d GFLOP/s per backend) for CI.
fn emit_snapshot(_c: &mut Criterion) {
    let (n, reps, conv_reps) = if quick() { (128, 20, 6) } else { (256, 20, 10) };
    let a = rand_tensor(&[n, n], 1);
    let b = rand_tensor(&[n, n], 2);
    let gemm_flops = 2 * (n as u64).pow(3);

    let spec = Conv3dSpec { in_c: 8, out_c: 16, k: 3, pad: 1 };
    let (d, h, w) = (8usize, 16, 16);
    let x = rand_tensor(&[2, spec.in_c, d, h, w], 3);
    let wt = rand_tensor(&[spec.out_c, spec.in_c, 3, 3, 3], 4);
    let bias = vec![0.1f32; spec.out_c];
    let conv_flops = spec.flops(2, d, h, w);

    let mut gemm_rows = String::new();
    let mut conv_rows = String::new();
    for (i, (label, backend, parallel)) in configs().into_iter().enumerate() {
        set_backend_override(backend);
        pool::set_parallel(parallel);
        let g = gflops(reps, gemm_flops, || {
            black_box(matmul(black_box(&a), black_box(&b)));
        });
        let cv = gflops(conv_reps, conv_flops, || {
            black_box(conv3d_blocked(black_box(&x), black_box(&wt), &bias, &spec));
        });
        let sep = if i == 0 { "" } else { ",\n" };
        gemm_rows.push_str(&format!("{sep}      \"{label}_gflops\": {g:.3}"));
        conv_rows.push_str(&format!("{sep}      \"{label}_gflops\": {cv:.3}"));
        println!("kernels[{label}]: gemm {g:.2} GFLOP/s, conv3d {cv:.2} GFLOP/s");
    }
    set_backend_override(None);
    pool::set_parallel(true);

    let json = format!(
        "{{\n  \"bench\": \"kernels\",\n  \"quick\": {},\n  \"avx2_available\": {},\n  \
         \"pool_threads\": {},\n  \"gemm\": {{\n    \"m\": {n}, \"k\": {n}, \"n\": {n},\n    \
         \"gflops\": {{\n{gemm_rows}\n    }}\n  }},\n  \"conv3d\": {{\n    \
         \"in_c\": {}, \"out_c\": {}, \"dhw\": [{d}, {h}, {w}],\n    \
         \"gflops\": {{\n{conv_rows}\n    }}\n  }}\n}}\n",
        quick(),
        avx2_available(),
        pool::num_threads(),
        spec.in_c,
        spec.out_c,
    );
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_kernels.json");
    std::fs::write(&path, &json).expect("write BENCH_kernels.json");
    println!("snapshot -> {}", path.display());
}

criterion_group!(benches, bench, emit_snapshot);
criterion_main!(benches);
