//! §4.2 ablation: generic vs scalar 3D multivariate-normal PDF, and its
//! effect on the detector-simulator pipeline.
//!
//! Paper: replacing the xtensor general-case MVN PDF with a scalar 3D
//! implementation gave a **13× speedup of the PDF** and a **1.5× speedup of
//! the simulator pipeline**.

use criterion::{criterion_group, criterion_main, Criterion};
use etalumis_distributions::mvn::{mvn3_diag_log_pdf, mvn3_log_pdf, MvnGeneric};
use etalumis_simulators::{Detector, DetectorConfig, IncomingParticle, ParticleKind};
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("pdf3d");
    group.sample_size(20).measurement_time(Duration::from_secs(3));
    // Kernel-level comparison on a batch of evaluation points.
    let mean = [4.0, 17.0, 17.0];
    let cov_full = vec![4.0, 0.0, 0.0, 0.0, 2.6, 0.0, 0.0, 0.0, 2.6];
    let cov_ut = [4.0, 0.0, 0.0, 2.6, 0.0, 2.6];
    let var = [4.0, 2.6, 2.6];
    let generic = MvnGeneric::new(mean.to_vec(), cov_full);
    let points: Vec<[f64; 3]> =
        (0..512).map(|i| [(i % 8) as f64, ((i / 8) % 16) as f64, (i / 128) as f64]).collect();
    group.bench_function("pdf_generic_cholesky", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for p in &points {
                acc += generic.log_pdf(black_box(p));
            }
            black_box(acc)
        })
    });
    group.bench_function("pdf_scalar3d", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for p in &points {
                acc += mvn3_log_pdf(black_box(p), &mean, &cov_ut);
            }
            black_box(acc)
        })
    });
    group.bench_function("pdf_scalar3d_diag", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for p in &points {
                acc += mvn3_diag_log_pdf(black_box(p), &mean, &var);
            }
            black_box(acc)
        })
    });
    // Pipeline-level comparison: full detector simulation of one event.
    let det = Detector::new(DetectorConfig::default());
    let particles = vec![
        IncomingParticle { kind: ParticleKind::PiCharged, energy: 20.0, dy: 0.01, dx: -0.02 },
        IncomingParticle { kind: ParticleKind::Pi0, energy: 12.0, dy: -0.01, dx: 0.015 },
        IncomingParticle { kind: ParticleKind::Electron, energy: 6.0, dy: 0.02, dx: 0.0 },
    ];
    group.bench_function("detector_pipeline_generic", |b| {
        b.iter(|| black_box(det.simulate_generic_pdf(black_box(&particles))))
    });
    group.bench_function("detector_pipeline_scalar", |b| {
        b.iter(|| black_box(det.simulate(black_box(&particles))))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
