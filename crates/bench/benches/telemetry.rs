//! Telemetry overhead: the disabled handle must cost ~nothing.
//!
//! The instrumented hot paths (scheduler task loop, trainer step, channel
//! send/recv) call into [`Telemetry`] unconditionally; a disabled handle
//! turns each call into a single `Option` branch. Two measurements bound
//! that claim:
//!
//! * `disabled_calls` vs `enabled_calls` — the raw per-call cost of the
//!   recording primitives themselves.
//! * `runner_disabled` vs `runner_enabled` — a real pooled trace-generation
//!   batch with the scheduler instrumentation off and on; disabled must
//!   match the pre-instrumentation baseline (the call sites reduce to
//!   branches), and enabled shows the worst-case recording cost.
//!
//! Run: `cargo bench -p etalumis-bench --bench telemetry` (add `-- --quick`
//! for the CI smoke mode).

use criterion::{criterion_group, criterion_main, Criterion};
use etalumis_bench::bench_tau_model;
use etalumis_core::ObserveMap;
use etalumis_runtime::{BatchRunner, CountingSink, RuntimeConfig, SimulatorPool};
use etalumis_telemetry::Telemetry;
use std::hint::black_box;
use std::time::Duration;

const TRACES_PER_ITER: usize = 16;
const CALLS_PER_ITER: usize = 1000;

fn bench_raw_calls(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry_calls");
    group.sample_size(20);
    group.bench_function("disabled_calls", |b| {
        let tel = Telemetry::disabled();
        b.iter(|| {
            for i in 0..CALLS_PER_ITER {
                let _sp = tel.span("bench.span");
                tel.count("bench.count", black_box(i as u64));
                tel.gauge("bench.gauge", black_box(i as f64));
            }
        });
    });
    group.bench_function("enabled_calls", |b| {
        let tel = Telemetry::enabled();
        b.iter(|| {
            for i in 0..CALLS_PER_ITER {
                let _sp = tel.span("bench.span");
                tel.count("bench.count", black_box(i as u64));
                tel.gauge("bench.gauge", black_box(i as f64));
            }
            // Keep the buffers bounded across criterion's iterations.
            black_box(tel.drain().len())
        });
    });
    group.finish();
}

fn bench_runner(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry_runner");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    let workers = RuntimeConfig::default().resolved_workers().min(4);
    let observes = ObserveMap::new();

    group.bench_function("runner_disabled", |b| {
        let mut pool = SimulatorPool::from_factory(workers, |_| bench_tau_model());
        let runner = BatchRunner::new(RuntimeConfig { workers, stealing: true });
        let mut seed = 0u64;
        b.iter(|| {
            let sink = CountingSink::default();
            let stats = runner.run_prior(&mut pool, &observes, TRACES_PER_ITER, seed, &sink);
            seed += 1;
            stats.total_executed()
        });
    });

    group.bench_function("runner_enabled", |b| {
        let mut pool = SimulatorPool::from_factory(workers, |_| bench_tau_model());
        let tel = Telemetry::enabled();
        let runner =
            BatchRunner::new(RuntimeConfig { workers, stealing: true }).with_telemetry(tel.clone());
        let mut seed = 0u64;
        b.iter(|| {
            let sink = CountingSink::default();
            let stats = runner.run_prior(&mut pool, &observes, TRACES_PER_ITER, seed, &sink);
            seed += 1;
            black_box(tel.drain().len());
            stats.total_executed()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_raw_calls, bench_runner);
criterion_main!(benches);
