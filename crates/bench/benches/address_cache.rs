//! §4.2 ablation: dladdr-style address-string construction, cached vs not.
//!
//! Paper: "The conversion is quite expensive, which prompted us to add a
//! hash map to cache dladdr results, giving a **5× improvement** in the
//! production of address strings."

use criterion::{criterion_group, criterion_main, Criterion};
use etalumis_ppx::address::{CachedResolver, SymbolResolver};
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("address_cache");
    group.sample_size(20).measurement_time(Duration::from_secs(3));
    // A Sherpa-scale symbol table and a trace worth of call stacks: deep
    // stacks, heavily repeated frames (the realistic pattern — the same
    // sampling call sites fire thousands of times per run).
    let table = SymbolResolver::synthetic(20_000, 64);
    let stacks: Vec<Vec<u64>> = (0..600)
        .map(|i| {
            let hot = (i % 25) as u64;
            vec![
                1_000 * 64,
                (2_000 + hot * 3) * 64,
                (5_000 + hot) * 64 + 7,
                (9_000 + (i % 5) as u64) * 64,
                (15_000 + hot * 2) * 64 + 13,
            ]
        })
        .collect();
    group.bench_function("resolve_uncached", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for s in &stacks {
                total += table.resolve_stack_uncached(black_box(s)).len();
            }
            black_box(total)
        })
    });
    group.bench_function("resolve_cached", |b| {
        b.iter(|| {
            // The cache persists across a run, as in the paper's front end.
            let mut cached = CachedResolver::new(&table);
            let mut total = 0usize;
            for s in &stacks {
                total += cached.resolve_stack(black_box(s)).len();
            }
            black_box(total)
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
