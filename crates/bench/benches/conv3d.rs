//! §4.4.2 ablation: naive NCDHW Conv3D vs blocked NCDHW8c Conv3D.
//!
//! Paper: "the heavily used 3D convolution kernel achieved an 8x
//! improvement" from the MKL-DNN blocked layout + SIMD vectorization.
//! The workload is the first conv layer of the observation encoder on the
//! paper's 20×35×35 voxel observations.

use criterion::{criterion_group, criterion_main, Criterion};
use etalumis_tensor::conv::{conv3d_blocked, conv3d_naive};
use etalumis_tensor::{Conv3dSpec, Tensor};
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("conv3d");
    group.sample_size(10).measurement_time(Duration::from_secs(4));
    // Paper geometry (batch 1): Conv3D(1→64, k=3) on 20×35×35 ...
    let spec1 = Conv3dSpec { in_c: 1, out_c: 64, k: 3, pad: 1 };
    let x1 = Tensor::from_fn(&[1, 1, 20, 35, 35], |i| ((i * 31) % 17) as f32 * 0.1);
    let w1 = Tensor::from_fn(&[64, 1, 3, 3, 3], |i| ((i * 7) % 13) as f32 * 0.01 - 0.06);
    let b1 = vec![0.0f32; 64];
    group.bench_function("layer1_1to64_naive", |b| {
        b.iter(|| black_box(conv3d_naive(black_box(&x1), &w1, &b1, &spec1)))
    });
    group.bench_function("layer1_1to64_blocked", |b| {
        b.iter(|| black_box(conv3d_blocked(black_box(&x1), &w1, &b1, &spec1)))
    });
    // ... and a mid-stack layer (64→64 on the pooled volume) where channel
    // blocking matters most.
    let spec2 = Conv3dSpec { in_c: 64, out_c: 64, k: 3, pad: 1 };
    let x2 = Tensor::from_fn(&[1, 64, 10, 17, 17], |i| ((i * 13) % 11) as f32 * 0.05);
    let w2 = Tensor::from_fn(&[64, 64, 3, 3, 3], |i| ((i * 3) % 19) as f32 * 0.005 - 0.04);
    let b2 = vec![0.0f32; 64];
    group.bench_function("layer3_64to64_naive", |b| {
        b.iter(|| black_box(conv3d_naive(black_box(&x2), &w2, &b2, &spec2)))
    });
    group.bench_function("layer3_64to64_blocked", |b| {
        b.iter(|| black_box(conv3d_blocked(black_box(&x2), &w2, &b2, &spec2)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
