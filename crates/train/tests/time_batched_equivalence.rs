//! Property test: the time-batched training path (`time_batched_lstm:
//! true`, the default) produces **exactly** the same losses and parameter
//! gradients as the step-wise path on identically seeded networks. The fused
//! `[T·B, in]` GEMMs are row-independent and every gradient accumulation is
//! ordered to mirror the step-wise walk, so the match is bitwise, not
//! approximate.

use etalumis_core::Executor;
use etalumis_data::TraceRecord;
use etalumis_nn::Module;
use etalumis_simulators::BranchingModel;
use etalumis_train::{IcConfig, IcNetwork};
use proptest::prelude::*;
use std::collections::HashMap;

fn records(n: usize, seed0: u64) -> Vec<TraceRecord> {
    let mut m = BranchingModel::standard();
    (0..n)
        .map(|s| TraceRecord::from_trace(&Executor::sample_prior(&mut m, seed0 + s as u64), true))
        .collect()
}

fn grads_and_loss(
    batched: bool,
    seed: u64,
    recs: &[TraceRecord],
) -> (f64, Vec<(String, Vec<f32>)>) {
    let mut cfg = IcConfig::small([1, 1, 1], seed);
    cfg.time_batched_lstm = batched;
    let mut net = IcNetwork::new(cfg);
    net.pregenerate(recs.iter());
    let mut by_type: HashMap<u64, Vec<&TraceRecord>> = HashMap::new();
    for r in recs {
        by_type.entry(r.trace_type).or_default().push(r);
    }
    let mut types: Vec<u64> = by_type.keys().copied().collect();
    types.sort_unstable();
    net.zero_grad();
    let mut loss = 0.0;
    for t in types {
        loss += net.loss_sub_minibatch(&by_type[&t]).unwrap();
    }
    let mut grads = Vec::new();
    net.visit_params("", &mut |n, p| grads.push((n.to_string(), p.grad.data().to_vec())));
    (loss, grads)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn time_batched_training_matches_stepwise_bitwise(
        seed in 0u64..1_000,
        n in 8usize..40,
    ) {
        let recs = records(n, seed * 1_000);
        let (loss_step, grads_step) = grads_and_loss(false, seed, &recs);
        let (loss_batch, grads_batch) = grads_and_loss(true, seed, &recs);
        prop_assert_eq!(loss_step.to_bits(), loss_batch.to_bits(), "loss differs");
        prop_assert_eq!(grads_step.len(), grads_batch.len());
        for ((na, ga), (nb, gb)) in grads_step.iter().zip(grads_batch.iter()) {
            prop_assert_eq!(na, nb);
            prop_assert_eq!(ga, gb, "gradient {} differs", na);
        }
    }
}
