//! Synchronous allreduce over rank threads, with the paper's optimizations.
//!
//! Paper §4.4.4: "the set of non-null gradient tensors differs for each rank
//! and is a small fraction of the total set of tensors. Therefore we first
//! perform an allreduce to obtain a map of all the tensors that are present
//! on all ranks; then ... we reduce all of the gradient tensors in the list"
//! — with small tensors concatenated into one buffer so the communication is
//! a single bandwidth-bound operation instead of thousands of latency-bound
//! calls. Reducing only non-null gradients gave 4×; concatenation removed
//! the remaining per-tensor latency.
//!
//! Ranks are threads sharing an [`AllReduceCtx`]; every reduction "round"
//! costs two barrier crossings (mirroring an `MPI_Allreduce` call), so the
//! per-tensor strategy pays the latency the paper measured and the
//! concatenated strategy amortizes it.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Barrier;

/// Reduction strategy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AllReduceStrategy {
    /// One reduction round per tensor, all tensors (pre-optimization).
    DensePerTensor,
    /// Presence-map round, then one round per non-null tensor (4× step).
    SparsePerTensor,
    /// Presence-map round, then a single concatenated round (full
    /// optimization).
    SparseConcat,
}

/// Shared state for `n` rank threads.
pub struct AllReduceCtx {
    n: usize,
    barrier: Barrier,
    buffer: Mutex<Vec<f32>>,
    flags: Mutex<Vec<bool>>,
    /// Reduction rounds performed (for instrumentation).
    rounds: AtomicUsize,
}

impl AllReduceCtx {
    /// New context for `n` ranks.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            barrier: Barrier::new(n),
            buffer: Mutex::new(Vec::new()),
            flags: Mutex::new(Vec::new()),
            rounds: AtomicUsize::new(0),
        }
    }

    /// Number of participating ranks.
    pub fn num_ranks(&self) -> usize {
        self.n
    }

    /// Total reduction rounds so far.
    pub fn rounds(&self) -> usize {
        self.rounds.load(Ordering::Relaxed)
    }

    /// One synchronous sum-reduction round over a flat buffer; on return
    /// every rank's `data` holds the element-wise sum across ranks.
    pub fn reduce_sum(&self, data: &mut [f32]) {
        // Round 1: first rank to arrive sizes the buffer; all add.
        self.barrier.wait();
        {
            let mut buf = self.buffer.lock();
            if buf.len() != data.len() {
                buf.clear();
                buf.resize(data.len(), 0.0);
            }
            for (b, &d) in buf.iter_mut().zip(data.iter()) {
                *b += d;
            }
        }
        self.barrier.wait();
        {
            let buf = self.buffer.lock();
            data.copy_from_slice(&buf);
        }
        self.barrier.wait();
        // One rank clears for the next round (rank-agnostic: the first one
        // through the lock after the last barrier).
        {
            let mut buf = self.buffer.lock();
            if !buf.is_empty() {
                buf.clear();
            }
        }
        self.barrier.wait();
        self.rounds.fetch_add(1, Ordering::Relaxed);
    }

    /// Synchronous logical-OR reduction of a presence bitmap.
    pub fn reduce_or(&self, bits: &mut [bool]) {
        self.barrier.wait();
        {
            let mut fl = self.flags.lock();
            if fl.len() != bits.len() {
                fl.clear();
                fl.resize(bits.len(), false);
            }
            for (f, &b) in fl.iter_mut().zip(bits.iter()) {
                *f |= b;
            }
        }
        self.barrier.wait();
        {
            let fl = self.flags.lock();
            bits.copy_from_slice(&fl);
        }
        self.barrier.wait();
        {
            let mut fl = self.flags.lock();
            if !fl.is_empty() {
                fl.clear();
            }
        }
        self.barrier.wait();
        self.rounds.fetch_add(1, Ordering::Relaxed);
    }

    /// Allreduce-average a list of named gradient tensors under a strategy.
    ///
    /// Every rank must call this with the same tensor list (same names,
    /// same order, same shapes) — exactly the contract of the paper's
    /// globally shared pre-generated network. Returns the number of scalar
    /// elements communicated by this rank.
    pub fn allreduce_gradients(
        &self,
        grads: &mut [(&str, &mut [f32])],
        strategy: AllReduceStrategy,
    ) -> usize {
        let inv_n = 1.0 / self.n as f32;
        match strategy {
            AllReduceStrategy::DensePerTensor => {
                let mut elems = 0;
                for (_, g) in grads.iter_mut() {
                    self.reduce_sum(g);
                    for v in g.iter_mut() {
                        *v *= inv_n;
                    }
                    elems += g.len();
                }
                elems
            }
            AllReduceStrategy::SparsePerTensor | AllReduceStrategy::SparseConcat => {
                // Presence map: which tensors have any non-zero gradient on
                // any rank.
                let mut present: Vec<bool> =
                    grads.iter().map(|(_, g)| g.iter().any(|&x| x != 0.0)).collect();
                self.reduce_or(&mut present);
                if strategy == AllReduceStrategy::SparsePerTensor {
                    let mut elems = present.len();
                    for (i, (_, g)) in grads.iter_mut().enumerate() {
                        if present[i] {
                            self.reduce_sum(g);
                            for v in g.iter_mut() {
                                *v *= inv_n;
                            }
                            elems += g.len();
                        }
                    }
                    elems
                } else {
                    // Concatenate all present tensors into one buffer.
                    let total: usize = grads
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| present[*i])
                        .map(|(_, (_, g))| g.len())
                        .sum();
                    let mut buf = Vec::with_capacity(total);
                    for (i, (_, g)) in grads.iter().enumerate() {
                        if present[i] {
                            buf.extend_from_slice(g);
                        }
                    }
                    self.reduce_sum(&mut buf);
                    let mut off = 0;
                    for (i, (_, g)) in grads.iter_mut().enumerate() {
                        if present[i] {
                            let len = g.len();
                            for (dst, src) in g.iter_mut().zip(buf[off..off + len].iter()) {
                                *dst = src * inv_n;
                            }
                            off += len;
                        }
                    }
                    present.len() + total
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn run_ranks<F: Fn(usize) + Sync>(n: usize, f: F) {
        std::thread::scope(|s| {
            for r in 0..n {
                let f = &f;
                s.spawn(move || f(r));
            }
        });
    }

    #[test]
    fn reduce_sum_sums_across_ranks() {
        let ctx = Arc::new(AllReduceCtx::new(3));
        let out = Mutex::new(vec![Vec::new(); 3]);
        run_ranks(3, |r| {
            let mut data = vec![r as f32 + 1.0; 4];
            ctx.reduce_sum(&mut data);
            out.lock()[r] = data;
        });
        let res = out.lock();
        for r in 0..3 {
            assert_eq!(res[r], vec![6.0; 4], "rank {r}");
        }
    }

    #[test]
    fn repeated_rounds_do_not_leak_state() {
        let ctx = Arc::new(AllReduceCtx::new(2));
        run_ranks(2, |r| {
            for round in 0..5 {
                let mut data = vec![(r + round) as f32; 3];
                ctx.reduce_sum(&mut data);
                let expect = (0 + round) as f32 + (1 + round) as f32;
                assert_eq!(data, vec![expect; 3], "round {round}");
            }
        });
        assert_eq!(ctx.rounds(), 10); // 5 rounds × both ranks counted once each...
    }

    #[test]
    fn strategies_agree_on_the_averaged_result() {
        for strategy in [
            AllReduceStrategy::DensePerTensor,
            AllReduceStrategy::SparsePerTensor,
            AllReduceStrategy::SparseConcat,
        ] {
            let ctx = Arc::new(AllReduceCtx::new(2));
            let results = Mutex::new(vec![Vec::<Vec<f32>>::new(); 2]);
            run_ranks(2, |r| {
                // Rank 0 has grads in tensor A only; rank 1 in tensor B only;
                // tensor C is null on both (skipped by sparse strategies).
                let mut a = if r == 0 { vec![2.0, 4.0] } else { vec![0.0, 0.0] };
                let mut b = if r == 1 { vec![6.0] } else { vec![0.0] };
                let mut c = vec![0.0, 0.0, 0.0];
                {
                    let mut list: Vec<(&str, &mut [f32])> =
                        vec![("a", &mut a), ("b", &mut b), ("c", &mut c)];
                    ctx.allreduce_gradients(&mut list, strategy);
                }
                results.lock()[r] = vec![a, b, c];
            });
            let res = results.lock();
            for r in 0..2 {
                assert_eq!(res[r][0], vec![1.0, 2.0], "{strategy:?} rank {r} tensor a");
                assert_eq!(res[r][1], vec![3.0], "{strategy:?} rank {r} tensor b");
                assert_eq!(res[r][2], vec![0.0, 0.0, 0.0], "{strategy:?} tensor c");
            }
        }
    }

    #[test]
    fn sparse_strategies_move_fewer_elements() {
        let ctx_dense = Arc::new(AllReduceCtx::new(2));
        let ctx_sparse = Arc::new(AllReduceCtx::new(2));
        let dense_elems = Mutex::new(0usize);
        let sparse_elems = Mutex::new(0usize);
        run_ranks(2, |r| {
            let mut tensors: Vec<Vec<f32>> =
                (0..10).map(|i| if i == r { vec![1.0; 100] } else { vec![0.0; 100] }).collect();
            {
                let mut list: Vec<(&str, &mut [f32])> =
                    tensors.iter_mut().map(|t| ("t", t.as_mut_slice())).collect();
                let e = ctx_dense.allreduce_gradients(&mut list, AllReduceStrategy::DensePerTensor);
                if r == 0 {
                    *dense_elems.lock() = e;
                }
            }
            let mut tensors2: Vec<Vec<f32>> =
                (0..10).map(|i| if i == r { vec![1.0; 100] } else { vec![0.0; 100] }).collect();
            {
                let mut list: Vec<(&str, &mut [f32])> =
                    tensors2.iter_mut().map(|t| ("t", t.as_mut_slice())).collect();
                let e = ctx_sparse.allreduce_gradients(&mut list, AllReduceStrategy::SparseConcat);
                if r == 0 {
                    *sparse_elems.lock() = e;
                }
            }
        });
        assert_eq!(*dense_elems.lock(), 1000);
        // Sparse: presence map (10) + 2 non-null tensors (200).
        assert_eq!(*sparse_elems.lock(), 210);
    }
}
