//! The dynamic 3DCNN–LSTM inference-compilation network (paper §4.3).
//!
//! One LSTM core and one 3DCNN observation encoder are shared across all
//! sample statements; *address-specific* components (address embeddings,
//! previous-sample embeddings, proposal layers) are attached dynamically —
//! "these address-specific layers are created at the first encounter with a
//! random number draw at a given address", so the parameter count grows with
//! the training data.
//!
//! Each LSTM input is the concatenation of the observation embedding, the
//! current address embedding, and the previous sample's embedding; each
//! output feeds the address-specific proposal layer (mixture of truncated
//! normals for bounded continuous priors, categorical for discrete priors,
//! Gaussian for unbounded priors).
//!
//! Training processes *sub-minibatches* of traces sharing one trace type in
//! a single batched forward/backward pass (Algorithm 1); inference drives
//! the same network step-by-step as a [`ProposalProvider`].

use etalumis_core::Address;
use etalumis_data::TraceRecord;
use etalumis_distributions::{Distribution, Value};
use etalumis_inference::ProposalProvider;
use etalumis_nn::{
    CategoricalHead, Cnn3d, Cnn3dConfig, Embedding, Lstm, LstmState, MixtureTnHead, Module,
    NormalHead, Parameter, SampleEmbedding,
};
use etalumis_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::time::Instant;

/// Architecture hyperparameters.
#[derive(Clone, Debug)]
pub struct IcConfig {
    /// Observation encoder configuration.
    pub cnn: Cnn3dConfig,
    /// LSTM hidden units (paper: 512).
    pub lstm_hidden: usize,
    /// Stacked LSTM layers (paper: 1 after the hyperparameter search).
    pub lstm_stacks: usize,
    /// Address embedding size (paper: 64).
    pub address_embed_dim: usize,
    /// Previous-sample embedding size (paper: 4).
    pub sample_embed_dim: usize,
    /// Hidden width of the two-layer proposal heads.
    pub proposal_hidden: usize,
    /// Truncated-normal mixture components (paper: 10).
    pub mixture_components: usize,
    /// Weight-init RNG seed (all ranks must share it).
    pub seed: u64,
    /// Fuse each training sub-minibatch into one time-batched LSTM pass
    /// (one `[T·B, in]·[in, 4H]` input GEMM per layer) with batched
    /// address-embedding lookups. Bit-identical to the step-wise path;
    /// inference always steps. Default on.
    pub time_batched_lstm: bool,
}

impl IcConfig {
    /// The full paper architecture on 20×35×35 observations
    /// (LSTM 512×1, obs 256, address 64, sample 4, 10 mixture components).
    pub fn paper() -> Self {
        Self {
            cnn: Cnn3dConfig::paper(),
            lstm_hidden: 512,
            lstm_stacks: 1,
            address_embed_dim: 64,
            sample_embed_dim: 4,
            proposal_hidden: 64,
            mixture_components: 10,
            seed: 0,
            time_batched_lstm: true,
        }
    }

    /// A laptop-scale configuration for a given observation shape. Tiny
    /// observations (any dimension < 4) get a pool-free CNN.
    pub fn small(obs_dims: [usize; 3], seed: u64) -> Self {
        let cnn = if obs_dims.iter().any(|&d| d < 4) {
            Cnn3dConfig::tiny(obs_dims, 16)
        } else {
            Cnn3dConfig::small(obs_dims, 32)
        };
        Self {
            cnn,
            lstm_hidden: 64,
            lstm_stacks: 1,
            address_embed_dim: 16,
            sample_embed_dim: 4,
            proposal_hidden: 32,
            mixture_components: 5,
            seed,
            time_batched_lstm: true,
        }
    }

    /// LSTM input width: obs embed + address embed + sample embed.
    pub fn lstm_input(&self) -> usize {
        self.cnn.embedding_dim + self.address_embed_dim + self.sample_embed_dim
    }
}

/// Address-specific proposal layer.
enum Head {
    Mixture(MixtureTnHead),
    Categorical(CategoricalHead),
    Normal(NormalHead),
}

/// All address-specific components for one address.
struct AddressLayers {
    /// Row in the address-embedding table.
    embed_id: usize,
    /// Previous-sample embedding (input width depends on the prior).
    sample_embed: SampleEmbedding,
    head: Head,
    /// Prior kind captured at registration (sanity checks).
    kind: &'static str,
}

/// How a value enters the sample embedding, given its prior.
fn value_features(dist: &Distribution, value: &Value, width: usize) -> Vec<f32> {
    let mut v = vec![0.0f32; width];
    match dist {
        Distribution::Categorical { .. } | Distribution::Bernoulli { .. } => {
            let i = value.as_i64() as usize;
            if i < width {
                v[i] = 1.0;
            }
        }
        _ => {
            // Normalize continuous values by the prior's location/scale.
            let x = value.as_f64();
            let norm = match dist.support() {
                Some((lo, hi)) => (x - lo) / (hi - lo),
                None => (x - dist.mean()) / dist.std().max(1e-9),
            };
            v[0] = norm as f32;
        }
    }
    v
}

/// Feature width of a prior's values.
fn value_width(dist: &Distribution) -> usize {
    match dist.num_categories() {
        Some(k) => k,
        None => 1,
    }
}

/// Fraction of prior mass mixed into categorical proposals at inference
/// time, protecting importance weights from overconfident networks.
const CATEGORICAL_PRIOR_MIX: f64 = 0.05;

/// The dynamic inference-compilation network.
pub struct IcNetwork {
    /// Architecture.
    pub config: IcConfig,
    cnn: Cnn3d,
    lstm: Lstm,
    address_table: Embedding,
    layers: HashMap<String, AddressLayers>,
    /// Deterministic ordering of addresses for stable parameter naming.
    address_order: Vec<String>,
    frozen: bool,
    rng: StdRng,
    /// Per-call phase timing of the last loss computation (forward, backward).
    pub last_phase_secs: (f64, f64),
    // --- inference-time state (ProposalProvider) ---
    inf_state: Option<LstmState>,
    inf_obs_embed: Option<Tensor>,
    inf_prev: Option<(String, Vec<f32>)>,
}

impl IcNetwork {
    /// Build an empty network (no address-specific layers yet).
    pub fn new(config: IcConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let cnn = Cnn3d::new(&mut rng, config.cnn.clone());
        let lstm = Lstm::new(&mut rng, config.lstm_input(), config.lstm_hidden, config.lstm_stacks);
        let address_table = Embedding::new(&mut rng, 0, config.address_embed_dim);
        Self {
            config,
            cnn,
            lstm,
            address_table,
            layers: HashMap::new(),
            address_order: Vec::new(),
            frozen: false,
            rng,
            last_phase_secs: (0.0, 0.0),
            inf_state: None,
            inf_obs_embed: None,
            inf_prev: None,
        }
    }

    /// Number of registered addresses.
    pub fn num_addresses(&self) -> usize {
        self.address_order.len()
    }

    /// Freeze the architecture: unseen addresses are no longer registered
    /// (their traces are dropped from training, as in the paper's online
    /// allreduce mode, §4.4).
    pub fn freeze(&mut self) {
        self.frozen = true;
    }

    /// True when frozen.
    pub fn is_frozen(&self) -> bool {
        self.frozen
    }

    /// Register one address with its prior; no-op if known or frozen.
    /// Returns false if the address is unknown and the net is frozen.
    pub fn register_address(&mut self, address: &str, prior: &Distribution) -> bool {
        if self.layers.contains_key(address) {
            return true;
        }
        if self.frozen {
            return false;
        }
        let cfg = &self.config;
        let embed_id = self.address_table.len();
        self.address_table.grow(&mut self.rng, embed_id + 1);
        let sample_embed =
            SampleEmbedding::new(&mut self.rng, value_width(prior), cfg.sample_embed_dim);
        let head = match prior {
            Distribution::Categorical { probs } => Head::Categorical(CategoricalHead::new(
                &mut self.rng,
                cfg.lstm_hidden,
                cfg.proposal_hidden,
                probs.len(),
            )),
            Distribution::Bernoulli { .. } => Head::Categorical(CategoricalHead::new(
                &mut self.rng,
                cfg.lstm_hidden,
                cfg.proposal_hidden,
                2,
            )),
            d if d.support().is_some() => Head::Mixture(MixtureTnHead::new(
                &mut self.rng,
                cfg.lstm_hidden,
                cfg.proposal_hidden,
                cfg.mixture_components,
            )),
            d => Head::Normal(NormalHead::new(
                &mut self.rng,
                cfg.lstm_hidden,
                cfg.proposal_hidden,
                d.mean(),
                d.std().max(1e-6),
            )),
        };
        self.layers.insert(
            address.to_string(),
            AddressLayers { embed_id, sample_embed, head, kind: prior.kind() },
        );
        self.address_order.push(address.to_string());
        true
    }

    /// Pre-generate all address-specific layers implied by a dataset
    /// (offline mode, §4.4) and freeze. Ranks doing this with the same seed
    /// and the same dataset hold identical networks.
    pub fn pregenerate<'a>(&mut self, records: impl Iterator<Item = &'a TraceRecord>) {
        // Register in a canonical (sorted) order so every rank assigns the
        // same embedding ids regardless of dataset iteration order.
        let mut seen: Vec<(String, Distribution)> = Vec::new();
        let mut have: std::collections::HashSet<String> = std::collections::HashSet::new();
        for rec in records {
            for e in rec.controlled() {
                if have.insert(e.address.clone()) {
                    seen.push((e.address.clone(), e.distribution.clone()));
                }
            }
        }
        seen.sort_by(|a, b| a.0.cmp(&b.0));
        for (addr, dist) in seen {
            self.register_address(&addr, &dist);
        }
        self.freeze();
    }

    /// True if every controlled address in the record is registered.
    pub fn knows(&self, rec: &TraceRecord) -> bool {
        rec.controlled().all(|e| self.layers.contains_key(&e.address))
    }

    /// Algorithm 1 inner step: loss and gradients for a sub-minibatch of
    /// traces sharing one trace type. Returns the summed −log q loss, or
    /// `None` if the sub-minibatch references unknown addresses while frozen
    /// (such traces are dropped, as in the paper).
    ///
    /// Gradients accumulate into the network parameters; the caller is
    /// responsible for `zero_grad` / scaling / the optimizer step.
    pub fn loss_sub_minibatch(&mut self, records: &[&TraceRecord]) -> Option<f64> {
        assert!(!records.is_empty());
        let t0 = records[0].trace_type;
        assert!(
            records.iter().all(|r| r.trace_type == t0),
            "sub-minibatch must share one trace type"
        );
        let b = records.len();
        let steps: Vec<&str> = records[0].controlled().map(|e| e.address.as_str()).collect();
        if steps.is_empty() {
            return Some(0.0);
        }
        // Register (online mode) or verify (frozen) all addresses.
        for rec in records {
            for e in rec.controlled() {
                if !self.register_address(&e.address, &e.distribution) {
                    return None;
                }
            }
        }
        let fwd_start = Instant::now(); // etalumis: allow(determinism, reason = "forward-pass timing span; telemetry only")
                                        // Observation embedding, once per trace. Observations are reshaped
                                        // to the CNN's configured input volume.
        let dims = self.config.cnn.input_dims;
        let vol = dims[0] * dims[1] * dims[2];
        let mut obs_data = Vec::with_capacity(b * vol);
        for r in records {
            assert_eq!(
                r.observation.data.len(),
                vol,
                "observation size {:?} does not match CNN input {dims:?}",
                r.observation.shape
            );
            obs_data.extend_from_slice(&r.observation.data);
        }
        let obs = Tensor::from_vec(&[b, 1, dims[0], dims[1], dims[2]], obs_data);
        let obs_embed = self.cnn.forward(&obs);
        // Collect per-step prior/value info.
        let per_trace_entries: Vec<Vec<(&Distribution, &Value)>> = records
            .iter()
            .map(|r| r.controlled().map(|e| (&e.distribution, &e.value)).collect())
            .collect();
        let t_steps = steps.len();
        let mut state = self.lstm.begin_sequence(b);
        // Per-step previous-sample embeddings (zeros at t = 0). Shared by
        // both LSTM paths; the per-address modules cache for backward.
        let mut samp_embeds: Vec<Tensor> = Vec::with_capacity(t_steps);
        samp_embeds.push(Tensor::zeros(&[b, self.config.sample_embed_dim]));
        for t in 1..t_steps {
            let prev_addr = steps[t - 1];
            let width = self.layers[prev_addr].sample_embed.in_dim();
            let mut feats = Tensor::zeros(&[b, width]);
            for (bi, entries) in per_trace_entries.iter().enumerate() {
                let (dist, value) = entries[t - 1];
                feats.row_mut(bi).copy_from_slice(&value_features(dist, value, width));
            }
            let layers = self.layers.get_mut(prev_addr).unwrap(); // etalumis: allow(panic-freedom, reason = "address layers are registered before any step references them (registry invariant)")
            samp_embeds.push(layers.sample_embed.forward(&feats));
        }
        let embed_ids: Vec<usize> = steps.iter().map(|a| self.layers[*a].embed_id).collect();
        let batched = self.config.time_batched_lstm;
        let hs: Vec<Tensor> = if batched {
            // Time-batched path (§4.4.3): one address lookup for all T·B
            // rows, one stacked input tensor, one fused LSTM pass. The
            // batched LSTM forward is bit-identical to stepping, and the
            // backward below scatters address grads in step-wise order, so
            // both paths produce identical losses and gradients.
            let all_ids: Vec<usize> =
                embed_ids.iter().flat_map(|&id| std::iter::repeat(id).take(b)).collect();
            let addr_embed = self.address_table.forward_inference(&all_ids);
            let (w_obs, w_addr) = (self.config.cnn.embedding_dim, self.config.address_embed_dim);
            let in_w = self.config.lstm_input();
            let mut xs = vec![0.0f32; t_steps * b * in_w];
            for t in 0..t_steps {
                for bi in 0..b {
                    let r = t * b + bi;
                    let row = &mut xs[r * in_w..(r + 1) * in_w];
                    row[..w_obs].copy_from_slice(obs_embed.row(bi));
                    row[w_obs..w_obs + w_addr].copy_from_slice(addr_embed.row(r));
                    row[w_obs + w_addr..].copy_from_slice(samp_embeds[t].row(bi));
                }
            }
            let xs = Tensor::from_vec(&[t_steps * b, in_w], xs);
            let out = self.lstm.forward_sequence(&xs, t_steps, &mut state);
            let hid = self.config.lstm_hidden;
            (0..t_steps)
                .map(|t| {
                    Tensor::from_vec(&[b, hid], out.data()[t * b * hid..(t + 1) * b * hid].to_vec())
                })
                .collect()
        } else {
            steps
                .iter()
                .enumerate()
                .map(|(t, _)| {
                    let addr_embed = self.address_table.forward(&vec![embed_ids[t]; b]);
                    let x = Tensor::concat_cols(&[&obs_embed, &addr_embed, &samp_embeds[t]]);
                    self.lstm.step(&x, &mut state)
                })
                .collect()
        };
        let forward_secs = fwd_start.elapsed().as_secs_f64();
        let bwd_start = Instant::now(); // etalumis: allow(determinism, reason = "backward-pass timing span; telemetry only")
                                        // Proposal losses per step (heads fuse forward+backward).
        let mut loss = 0.0f64;
        let mut dhs: Vec<Tensor> = Vec::with_capacity(t_steps);
        for (t, addr) in steps.iter().enumerate() {
            let layers = self.layers.get_mut(*addr).unwrap(); // etalumis: allow(panic-freedom, reason = "address layers are registered before any step references them (registry invariant)")
            let (l, dh) = match &mut layers.head {
                Head::Categorical(head) => {
                    let targets: Vec<usize> =
                        per_trace_entries.iter().map(|e| e[t].1.as_i64() as usize).collect();
                    head.loss_and_grad(&hs[t], &targets)
                }
                Head::Mixture(head) => {
                    let mut targets = Vec::with_capacity(b);
                    let mut lows = Vec::with_capacity(b);
                    let mut highs = Vec::with_capacity(b);
                    for e in &per_trace_entries {
                        let (dist, value) = e[t];
                        let (lo, hi) = dist.support().expect("mixture head needs support"); // etalumis: allow(panic-freedom, reason = "mixture heads are only constructed for bounded distributions")
                        targets.push(value.as_f64());
                        lows.push(lo);
                        highs.push(hi);
                    }
                    head.loss_and_grad(&hs[t], &targets, &lows, &highs)
                }
                Head::Normal(head) => {
                    let targets: Vec<f64> =
                        per_trace_entries.iter().map(|e| e[t].1.as_f64()).collect();
                    head.loss_and_grad(&hs[t], &targets)
                }
            };
            loss += l;
            dhs.push(dh);
        }
        // BPTT through the LSTM core.
        let dxs = self.lstm.backward_sequence(&dhs);
        // Split input grads back into the three embedding streams, walking
        // steps in reverse so each module pops its caches in reverse forward
        // order.
        let widths = [
            self.config.cnn.embedding_dim,
            self.config.address_embed_dim,
            self.config.sample_embed_dim,
        ];
        let mut d_obs_total = Tensor::zeros(&[b, widths[0]]);
        for t in (0..t_steps).rev() {
            let parts = dxs[t].split_cols(&widths);
            d_obs_total.add_assign(&parts[0]);
            // Sample embedding backward (only forwarded for t >= 1).
            if t > 0 {
                let prev_addr = steps[t - 1];
                let layers = self.layers.get_mut(prev_addr).unwrap(); // etalumis: allow(panic-freedom, reason = "address layers are registered before any step references them (registry invariant)")
                let _dfeats = layers.sample_embed.backward(&parts[2]);
            }
            if batched {
                self.address_table.scatter_grad(&vec![embed_ids[t]; b], &parts[1]);
            } else {
                self.address_table.backward(&parts[1]);
            }
        }
        self.cnn.backward(&d_obs_total);
        let backward_secs = bwd_start.elapsed().as_secs_f64();
        self.last_phase_secs = (forward_secs, backward_secs);
        Some(loss)
    }

    /// Analytic forward flop count for a sub-minibatch of `b` traces with
    /// `t_steps` LSTM steps (used for Table 2 Gflop/s reporting).
    pub fn forward_flops(&self, b: usize, t_steps: usize) -> u64 {
        let cfg = &self.config;
        let cnn = cfg.cnn.forward_flops(b);
        let lstm = etalumis_tensor::flops::lstm_sequence_flops(
            b as u64,
            t_steps as u64,
            cfg.lstm_input() as u64,
            cfg.lstm_hidden as u64,
            cfg.lstm_stacks as u64,
        );
        // Heads: two-layer MLPs per step.
        let head = etalumis_tensor::flops::linear_flops(
            b as u64,
            cfg.lstm_hidden as u64,
            cfg.proposal_hidden as u64,
        ) + etalumis_tensor::flops::linear_flops(
            b as u64,
            cfg.proposal_hidden as u64,
            (3 * cfg.mixture_components) as u64,
        );
        cnn + lstm + t_steps as u64 * head
    }
}

impl Module for IcNetwork {
    fn visit_params(&mut self, prefix: &str, f: &mut dyn FnMut(&str, &mut Parameter)) {
        self.cnn.visit_params(&format!("{prefix}/cnn"), f);
        self.lstm.visit_params(&format!("{prefix}/lstm"), f);
        self.address_table.visit_params(&format!("{prefix}/addr_table"), f);
        // Deterministic registration order gives stable names across ranks.
        for addr in &self.address_order {
            let layers = self.layers.get_mut(addr).unwrap(); // etalumis: allow(panic-freedom, reason = "address_order only lists registered addresses (registry invariant)")
            let p = format!("{prefix}/addr/{addr}");
            layers.sample_embed.visit_params(&format!("{p}/sample"), f);
            match &mut layers.head {
                Head::Mixture(h) => h.visit_params(&format!("{p}/head"), f),
                Head::Categorical(h) => h.visit_params(&format!("{p}/head"), f),
                Head::Normal(h) => h.visit_params(&format!("{p}/head"), f),
            }
        }
    }
}

impl ProposalProvider for IcNetwork {
    fn begin_trace(&mut self, observation: &Value) {
        let obs = match observation {
            Value::Tensor(t) => t.clone(),
            v => etalumis_distributions::TensorValue::new(vec![1], vec![v.as_f64() as f32]),
        };
        let dims = self.config.cnn.input_dims;
        assert_eq!(
            obs.data.len(),
            dims[0] * dims[1] * dims[2],
            "observation {:?} does not match CNN input {dims:?}",
            obs.shape
        );
        let x = Tensor::from_vec(&[1, 1, dims[0], dims[1], dims[2]], obs.data);
        self.inf_obs_embed = Some(self.cnn.forward_inference(&x));
        self.inf_state = Some(self.lstm.begin_sequence(1));
        self.inf_prev = None;
    }

    fn propose(&mut self, address: &Address, prior: &Distribution) -> Option<Distribution> {
        let key = address.qualified();
        if !self.layers.contains_key(&key) {
            return None;
        }
        let obs_embed = self.inf_obs_embed.as_ref()?.clone();
        // Previous sample embedding.
        let samp_embed = match &self.inf_prev {
            None => Tensor::zeros(&[1, self.config.sample_embed_dim]),
            Some((prev_key, feats)) => {
                let prev_layers = self.layers.get(prev_key)?;
                let width = prev_layers.sample_embed.in_dim();
                let mut x = Tensor::zeros(&[1, width]);
                let n = feats.len().min(width);
                x.row_mut(0)[..n].copy_from_slice(&feats[..n]);
                prev_layers.sample_embed.forward_inference(&x)
            }
        };
        let embed_id = self.layers[&key].embed_id;
        let addr_embed = self.address_table.forward_inference(&[embed_id]);
        let x = Tensor::concat_cols(&[&obs_embed, &addr_embed, &samp_embed]);
        let state = self.inf_state.as_mut()?;
        let h = self.lstm.step_inference(&x, state);
        let layers = &self.layers[&key];
        let q = match &layers.head {
            Head::Mixture(head) => {
                let (lo, hi) = prior.support()?;
                head.proposal(&h, lo, hi)
            }
            Head::Normal(head) => head.proposal(&h),
            Head::Categorical(head) => {
                let q = head.proposal(&h);
                // Mix a sliver of prior mass in for importance-weight safety.
                match (q, prior) {
                    (
                        Distribution::Categorical { probs: qp },
                        Distribution::Categorical { probs: pp },
                    ) if qp.len() == pp.len() => {
                        let total: f64 = pp.iter().sum(); // etalumis: allow(float-reduction, reason = "f64 prior-mass normalizer; sequential fixed order over one row")
                        Distribution::Categorical {
                            probs: qp
                                .iter()
                                .zip(pp.iter())
                                .map(|(&q, &p)| {
                                    (1.0 - CATEGORICAL_PRIOR_MIX) * q
                                        + CATEGORICAL_PRIOR_MIX * p / total
                                })
                                .collect(),
                        }
                    }
                    (q, _) => q,
                }
            }
        };
        let _ = layers.kind;
        Some(q)
    }

    fn notify(&mut self, address: &Address, prior: &Distribution, value: &Value) {
        let key = address.qualified();
        if let Some(layers) = self.layers.get(&key) {
            let width = layers.sample_embed.in_dim();
            self.inf_prev = Some((key, value_features(prior, value, width)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etalumis_core::{Executor, ObserveMap};
    use etalumis_simulators::BranchingModel;

    fn small_records(n: usize) -> Vec<TraceRecord> {
        let mut m = BranchingModel::standard();
        (0..n)
            .map(|s| TraceRecord::from_trace(&Executor::sample_prior(&mut m, s as u64), true))
            .collect()
    }

    fn small_config() -> IcConfig {
        IcConfig::small([1, 1, 1], 3)
    }

    #[test]
    fn pregeneration_registers_all_addresses() {
        let recs = small_records(40);
        let mut net = IcNetwork::new(small_config());
        net.pregenerate(recs.iter());
        assert!(net.is_frozen());
        // branch + up to 3 parts addresses.
        assert_eq!(net.num_addresses(), 4);
        assert!(recs.iter().all(|r| net.knows(r)));
    }

    #[test]
    fn loss_decreases_under_training() {
        let recs = small_records(64);
        let mut net = IcNetwork::new(small_config());
        net.pregenerate(recs.iter());
        // Group by trace type.
        let mut by_type: HashMap<u64, Vec<&TraceRecord>> = HashMap::new();
        for r in &recs {
            by_type.entry(r.trace_type).or_default().push(r);
        }
        use etalumis_nn::{Adam, LrSchedule, Optimizer};
        let mut opt = Adam::new(LrSchedule::Constant(2e-3));
        let mut first = 0.0;
        let mut last = 0.0;
        for it in 0..60 {
            net.zero_grad();
            let mut loss = 0.0;
            let mut count = 0usize;
            for sub in by_type.values() {
                loss += net.loss_sub_minibatch(sub).unwrap();
                count += sub.len();
            }
            let scale = 1.0 / count as f32;
            net.visit_params("", &mut |_, p| p.grad.scale(scale));
            opt.begin_step();
            net.visit_params("", &mut |n, p| opt.update(n, p));
            let avg = loss / count as f64;
            if it == 0 {
                first = avg;
            }
            last = avg;
        }
        assert!(last < first - 0.1, "IC loss should fall: {first} -> {last}");
    }

    #[test]
    fn frozen_network_drops_unknown_addresses() {
        let recs = small_records(10);
        // Pregenerate on branch-0 traces only (2 controlled addresses).
        let min_type: Vec<&TraceRecord> = recs.iter().filter(|r| r.num_controlled() == 2).collect();
        if min_type.is_empty() {
            return; // extremely unlikely with 10 seeds
        }
        let mut net = IcNetwork::new(small_config());
        net.pregenerate(min_type.iter().copied());
        let bigger: Vec<&TraceRecord> = recs.iter().filter(|r| r.num_controlled() == 3).collect();
        if let Some(first) = bigger.first() {
            assert_eq!(net.loss_sub_minibatch(&[first]), None);
        }
    }

    #[test]
    fn two_identically_seeded_networks_match() {
        let recs = small_records(20);
        let mut a = IcNetwork::new(small_config());
        let mut b = IcNetwork::new(small_config());
        a.pregenerate(recs.iter());
        // b sees the records in a different order; canonical sorting makes
        // the networks identical anyway.
        let mut rev: Vec<&TraceRecord> = recs.iter().collect();
        rev.reverse();
        b.pregenerate(rev.into_iter());
        let mut pa = Vec::new();
        a.visit_params("", &mut |n, p| pa.push((n.to_string(), p.value.clone())));
        let mut pb = Vec::new();
        b.visit_params("", &mut |n, p| pb.push((n.to_string(), p.value.clone())));
        assert_eq!(pa.len(), pb.len());
        for ((na, va), (nb, vb)) in pa.iter().zip(pb.iter()) {
            assert_eq!(na, nb);
            assert_eq!(va, vb, "parameter {na} differs");
        }
    }

    #[test]
    fn proposal_provider_runs_guided_inference() {
        let recs = small_records(50);
        let mut net = IcNetwork::new(small_config());
        net.pregenerate(recs.iter());
        // Untrained proposals must still produce valid guided traces.
        let mut model = BranchingModel::standard();
        let mut observes = ObserveMap::new();
        observes.insert("y".into(), Value::Real(1.0));
        let post =
            etalumis_inference::ic_importance_sampling(&mut model, &observes, "y", &mut net, 50, 9);
        assert_eq!(post.len(), 50);
        assert!(post.log_weights.iter().all(|w| w.is_finite()));
        assert!(post.effective_sample_size() > 1.0);
    }
}
