//! Streaming training: pull minibatches straight off a live trace channel.
//!
//! The offline pipeline stages generate → sort (§4.4.3) → train through
//! the filesystem; the sort exists only to hand training address-
//! homogeneous sub-minibatches. In streaming mode the runtime feeds a
//! bounded `etalumis-data` [`TraceChannel`] and the online
//! [`TraceBucketer`] recreates that homogeneity on the fly, so training
//! starts while the simulator fleet is still running and back-pressure —
//! not disk — couples the two rates.
//!
//! Reproducibility: the channel carries records in batch-index order (the
//! runtime's `StreamSink` guarantees it), so [`train_stream`] is a pure
//! function of the stream content and its own config.
//! [`train_stream_offline`] replays a [`TraceDataset`] through the
//! identical code path — over the shards a teed streaming run wrote, it
//! reproduces the live run's losses and weights bit for bit.
//!
//! [`train_stream_distributed`] runs the rank-parallel variant with the
//! same failure discipline as [`crate::train_distributed`]: an exhausted
//! rank still participates in the iteration's collectives with an empty
//! minibatch and raises a bit through the loss reduction, so every rank
//! leaves the loop at the same synchronization point, before the optimizer
//! step — replicas stay bit-identical and the trailing partial round is
//! discarded rather than applied unevenly.

use crate::allreduce::{AllReduceCtx, AllReduceStrategy};
use crate::distributed::{allreduce_network, DistReport};
use crate::network::{IcConfig, IcNetwork};
use crate::trainer::{accumulate_minibatch, PhaseTimings, TrainLog, Trainer};
use etalumis_data::{
    stream_dataset_into, BucketerConfig, TraceBucketer, TraceChannel, TraceDataset, TraceRecord,
};
use etalumis_nn::{Adam, LrSchedule, Module, Optimizer};
use etalumis_telemetry::Telemetry;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Knobs for the single-rank streaming loop.
#[derive(Clone, Copy, Debug)]
pub struct StreamTrainConfig {
    /// Sub-minibatch size a bucket releases at (paper's minibatch: 64).
    pub batch: usize,
    /// Bucketer spill threshold: after this many buffered-without-release
    /// records, the largest bucket is released undersized so rare trace
    /// types still train (see [`TraceBucketer`]).
    pub spill_after: usize,
    /// Records pulled off the stream head to pre-generate the network's
    /// address embeddings before the first step. They are then trained on
    /// normally (pushed through the bucketer first).
    pub warmup: usize,
    /// Freeze the network after warm-up pre-generation: later steps drop
    /// unknown-address traces instead of growing the parameter set.
    pub freeze_after_warmup: bool,
    /// Stop after this many optimizer steps (the channel is closed so the
    /// producer drains instead of blocking on a gone consumer).
    pub max_steps: Option<usize>,
}

impl Default for StreamTrainConfig {
    fn default() -> Self {
        Self {
            batch: 64,
            spill_after: 1024,
            warmup: 512,
            freeze_after_warmup: false,
            max_steps: None,
        }
    }
}

/// Outcome of a streaming training run.
#[derive(Clone, Debug, Default)]
pub struct StreamTrainReport {
    /// Loss trajectory and throughput of the step loop.
    pub log: TrainLog,
    /// Records actually pulled for warm-up (short when the stream ended
    /// early).
    pub warmup_used: usize,
    /// Bucket releases that reached full batch size.
    pub fills: usize,
    /// Undersized releases forced by the spill policy or the final flush.
    pub spills: usize,
}

/// Train on a live trace channel until it closes (single rank).
///
/// Pulls `cfg.warmup` records to pre-generate embeddings, then buckets the
/// warm-up prefix and every further record by trace type, taking one
/// optimizer step per released sub-minibatch; when the stream ends the
/// bucketer is flushed so every delivered trace trains. Deterministic
/// given the stream content and `cfg` — channel capacity, producer worker
/// count, and timing cannot change the result.
pub fn train_stream<O: Optimizer>(
    trainer: &mut Trainer<O>,
    channel: &TraceChannel,
    cfg: &StreamTrainConfig,
) -> StreamTrainReport {
    let start = Instant::now();
    let mut warmup = Vec::with_capacity(cfg.warmup);
    while warmup.len() < cfg.warmup {
        match channel.recv() {
            Some(r) => warmup.push(r),
            None => break,
        }
    }
    trainer.net.pregenerate(warmup.iter());
    if cfg.freeze_after_warmup {
        trainer.net.freeze();
    }
    let mut report = StreamTrainReport { warmup_used: warmup.len(), ..Default::default() };
    let mut bucketer =
        TraceBucketer::new(BucketerConfig { batch: cfg.batch, spill_after: cfg.spill_after })
            .with_telemetry(trainer.tel.clone());
    let mut steps = 0usize;
    let mut capped = false;
    fn take_step<O: Optimizer>(
        trainer: &mut Trainer<O>,
        release: Vec<TraceRecord>,
        report: &mut StreamTrainReport,
        steps: &mut usize,
        capped: &mut bool,
        cfg: &StreamTrainConfig,
        channel: &TraceChannel,
    ) {
        let res = trainer.step(&release);
        report.log.losses.push((*steps, res.loss));
        report.log.traces_seen += res.used;
        *steps += 1;
        if let Some(cap) = cfg.max_steps {
            if *steps >= cap {
                *capped = true;
                // Tell the producer we are gone: it drains instead of
                // blocking forever on a full channel nobody reads.
                channel.close();
            }
        }
    }
    for rec in warmup {
        if capped {
            break;
        }
        if let Some(release) = bucketer.push(rec) {
            take_step(trainer, release, &mut report, &mut steps, &mut capped, cfg, channel);
        }
    }
    while !capped {
        match channel.recv() {
            Some(rec) => {
                if let Some(release) = bucketer.push(rec) {
                    take_step(trainer, release, &mut report, &mut steps, &mut capped, cfg, channel);
                }
            }
            None => break,
        }
    }
    while !capped {
        match bucketer.flush() {
            Some(release) => {
                take_step(trainer, release, &mut report, &mut steps, &mut capped, cfg, channel)
            }
            None => break,
        }
    }
    let (fills, spills) = bucketer.release_counts();
    (report.fills, report.spills) = (fills as usize, spills as usize);
    report.log.wall_secs = start.elapsed().as_secs_f64();
    report
}

/// Replay a dataset through the exact [`train_stream`] code path.
///
/// This is the reproducibility comparator for teed streaming runs: the
/// shards `stream_dataset_resumable` writes, read back in dataset order,
/// are the live stream — so a fresh trainer run through this function
/// produces bit-identical losses and weights to the streaming run that
/// wrote them.
pub fn train_stream_offline<O: Optimizer>(
    trainer: &mut Trainer<O>,
    dataset: &TraceDataset,
    cfg: &StreamTrainConfig,
    channel_capacity: usize,
) -> std::io::Result<StreamTrainReport> {
    let channel = TraceChannel::bounded(channel_capacity);
    std::thread::scope(|s| {
        let producer = s.spawn(|| {
            let res = stream_dataset_into(dataset, &channel);
            channel.close();
            res
        });
        let report = train_stream(trainer, &channel, cfg);
        match producer.join() {
            Ok(res) => res.map(|_| report),
            Err(_) => Err(std::io::Error::other("dataset replay thread panicked")),
        }
    })
}

/// Knobs for the rank-parallel streaming loop.
#[derive(Clone, Debug)]
pub struct StreamDistConfig {
    /// Number of rank threads.
    pub ranks: usize,
    /// Sub-minibatch size a bucket releases at.
    pub batch: usize,
    /// Bucketer spill threshold (see [`StreamTrainConfig::spill_after`]).
    pub spill_after: usize,
    /// Records pulled off the stream head to pre-generate every replica
    /// identically. The replicas are then frozen — live address discovery
    /// would grow each rank's parameter set differently and break the
    /// allreduce.
    pub warmup: usize,
    /// Cap on iterations per rank (None = run until the stream ends).
    pub max_iterations: Option<usize>,
    /// Gradient-reduction strategy.
    pub strategy: AllReduceStrategy,
    /// Learning-rate schedule for Adam.
    pub lr: LrSchedule,
    /// Optional LARC trust coefficient (Adam-LARC when set).
    pub larc_trust: Option<f64>,
    /// Telemetry handle (disabled by default). When enabled, each rank
    /// emits worker-scoped `train.step` spans with nested `train.batch_read`
    /// / `train.forward` / `train.backward` / `train.allreduce_wait` /
    /// `train.optimizer` phases, plus `train.steps` counters and a
    /// `train.sub_minibatches` gauge per iteration.
    pub tel: Telemetry,
}

impl Default for StreamDistConfig {
    fn default() -> Self {
        Self {
            ranks: 2,
            batch: 16,
            spill_after: 256,
            warmup: 64,
            max_iterations: None,
            strategy: AllReduceStrategy::SparseConcat,
            lr: LrSchedule::Constant(1e-3),
            larc_trust: None,
            tel: Telemetry::disabled(),
        }
    }
}

/// The distributor → rank hand-off: released sub-minibatches, indexed
/// globally so rank `r` owns release `it * ranks + r` of iteration `it` —
/// a deterministic assignment no scheduling can perturb.
struct ReleaseFeed {
    state: Mutex<FeedState>,
    cond: Condvar,
}

struct FeedState {
    releases: Vec<Option<Vec<TraceRecord>>>,
    done: bool,
}

impl ReleaseFeed {
    fn new() -> Self {
        Self {
            state: Mutex::new(FeedState { releases: Vec::new(), done: false }),
            cond: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, FeedState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn push(&self, release: Vec<TraceRecord>) {
        let mut st = self.lock();
        st.releases.push(Some(release));
        // Notify while the state lock is held: a rank that just failed its
        // predicate cannot slip between this publish and the wakeup.
        self.cond.notify_all();
        drop(st);
    }

    fn finish(&self) {
        let mut st = self.lock();
        st.done = true;
        // Notify under the lock so a rank mid-predicate-check cannot miss
        // the done flag and park forever.
        self.cond.notify_all();
        drop(st);
    }

    /// Take global release `i`, blocking until it exists; `None` once the
    /// feed is finished with fewer than `i + 1` releases (this rank's side
    /// of the stream is exhausted).
    fn take(&self, i: usize) -> Option<Vec<TraceRecord>> {
        let mut st = self.lock();
        loop {
            if i < st.releases.len() {
                return st.releases[i].take();
            }
            if st.done {
                return None;
            }
            st = self.cond.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// Rank-parallel streaming training over a live trace channel.
///
/// A distributor thread pulls the channel, buckets records by trace type,
/// and publishes released sub-minibatches to a shared feed; rank `r`
/// consumes releases `it * ranks + r`, so the work split is a pure
/// function of the stream — identical for any timing. Every iteration the
/// ranks allreduce gradients plus `[loss·used, used, exhausted]`; when any
/// rank runs out of releases the reduced exhausted-bit sends *all* ranks
/// out of the loop together, before the optimizer step, exactly like the
/// failure bit in [`crate::train_distributed`] — so the replicas finish
/// bit-identical and the trailing partial round trains nobody.
///
/// Returns the rank-0 network (all replicas are identical) and the run
/// report.
pub fn train_stream_distributed(
    channel: &TraceChannel,
    net_config: IcConfig,
    cfg: &StreamDistConfig,
) -> (IcNetwork, DistReport) {
    let ranks = cfg.ranks.max(1);
    let mut warmup = Vec::with_capacity(cfg.warmup);
    while warmup.len() < cfg.warmup {
        match channel.recv() {
            Some(r) => warmup.push(r),
            None => break,
        }
    }
    let feed = ReleaseFeed::new();
    let losses: Mutex<Vec<Vec<f64>>> = Mutex::new(vec![Vec::new(); ranks]);
    let timings: Mutex<Vec<Vec<PhaseTimings>>> = Mutex::new(vec![Vec::new(); ranks]);
    let traces_total = std::sync::atomic::AtomicUsize::new(0);
    let comm_elems = std::sync::atomic::AtomicUsize::new(0);
    let nets: Mutex<Vec<Option<IcNetwork>>> = Mutex::new((0..ranks).map(|_| None).collect());
    let ctx = AllReduceCtx::new(ranks);
    let start = Instant::now();
    std::thread::scope(|s| {
        // Distributor: warm-up prefix first (training order matches the
        // single-rank loop), then the live stream, then the flush.
        let warmup_for_feed = warmup.clone();
        let feed_ref = &feed;
        let feed_tel = cfg.tel.clone();
        s.spawn(move || {
            let mut bucketer = TraceBucketer::new(BucketerConfig {
                batch: cfg.batch,
                spill_after: cfg.spill_after,
            })
            .with_telemetry(feed_tel);
            for rec in warmup_for_feed {
                if let Some(release) = bucketer.push(rec) {
                    feed_ref.push(release);
                }
            }
            while let Some(rec) = channel.recv() {
                if let Some(release) = bucketer.push(rec) {
                    feed_ref.push(release);
                }
            }
            while let Some(release) = bucketer.flush() {
                feed_ref.push(release);
            }
            feed_ref.finish();
        });
        for rank in 0..ranks {
            let ctx = &ctx;
            let feed = &feed;
            let warmup = &warmup;
            let losses = &losses;
            let timings = &timings;
            let traces_total = &traces_total;
            let comm_elems = &comm_elems;
            let nets = &nets;
            let net_config = net_config.clone();
            s.spawn(move || {
                let _tel_scope = cfg.tel.worker_scope(rank as u32);
                let mut net = IcNetwork::new(net_config);
                net.pregenerate(warmup.iter());
                // Frozen replicas: live address discovery would grow each
                // rank's parameter set differently and break the allreduce.
                net.freeze();
                let mut opt = match cfg.larc_trust {
                    Some(t) => Adam::with_larc(cfg.lr.clone(), t),
                    None => Adam::new(cfg.lr.clone()),
                };
                let mut it = 0usize;
                loop {
                    if let Some(cap) = cfg.max_iterations {
                        if it >= cap {
                            break;
                        }
                    }
                    let mut t = PhaseTimings::default();
                    // Dropped at end-of-iteration (or at the exhausted
                    // break, where it covers the final collective round) so
                    // the phase records below nest under it.
                    let step_span = cfg.tel.span("train.step");
                    let t0 = Instant::now();
                    // An exhausted rank cannot simply leave: the others are
                    // already committed to this iteration's collectives.
                    // Participate with an empty minibatch (zero gradients)
                    // and raise the bit through the reduction.
                    let (records, exhausted) = match feed.take(it * ranks + rank) {
                        Some(r) => (r, 0.0),
                        None => (Vec::new(), 1.0),
                    };
                    t.batch_read = t0.elapsed().as_secs_f64();
                    let res = accumulate_minibatch(&mut net, &records);
                    t.forward = res.timings.forward;
                    t.backward = res.timings.backward;
                    let ts = Instant::now();
                    let elems = allreduce_network(ctx, &mut net, cfg.strategy);
                    let mut stats = [res.loss * res.used as f64, res.used as f64, exhausted];
                    {
                        let mut f32buf = [stats[0] as f32, stats[1] as f32, stats[2] as f32];
                        ctx.reduce_sum(&mut f32buf);
                        stats = [f32buf[0] as f64, f32buf[1] as f64, f32buf[2] as f64];
                    }
                    t.sync = ts.elapsed().as_secs_f64();
                    if stats[2] > 0.0 {
                        // Some rank ran out of stream: every rank sees the
                        // same reduced bit and leaves here, before the
                        // optimizer step — replicas identical, the partial
                        // round discarded.
                        break;
                    }
                    let topt = Instant::now();
                    opt.begin_step();
                    net.visit_params("", &mut |n, p| opt.update(n, p));
                    t.optimizer = topt.elapsed().as_secs_f64();
                    if cfg.tel.is_enabled() {
                        let tel = &cfg.tel;
                        tel.span_record("train.batch_read", Duration::from_secs_f64(t.batch_read));
                        tel.span_record("train.forward", Duration::from_secs_f64(t.forward));
                        tel.span_record("train.backward", Duration::from_secs_f64(t.backward));
                        tel.span_record("train.allreduce_wait", Duration::from_secs_f64(t.sync));
                        tel.span_record("train.optimizer", Duration::from_secs_f64(t.optimizer));
                        tel.gauge("train.sub_minibatches", res.sub_minibatches as f64);
                        tel.count("train.steps", 1);
                        crate::trainer::record_kernel_telemetry(tel);
                    }
                    drop(step_span);
                    let global_loss = if stats[1] > 0.0 { stats[0] / stats[1] } else { f64::NAN };
                    losses.lock().unwrap_or_else(|e| e.into_inner())[rank].push(global_loss);
                    timings.lock().unwrap_or_else(|e| e.into_inner())[rank].push(t);
                    traces_total.fetch_add(res.used, std::sync::atomic::Ordering::Relaxed);
                    comm_elems.fetch_add(elems, std::sync::atomic::Ordering::Relaxed);
                    it += 1;
                }
                // Drain this rank's leftover feed slots so the distributor
                // is never stuck: nothing to do — the feed never blocks on
                // consumers. But if we leave because of the iteration cap,
                // the producer may still be pumping the channel; close it
                // so it drains instead of blocking forever.
                if cfg.max_iterations.is_some() {
                    channel.close();
                }
                nets.lock().unwrap_or_else(|e| e.into_inner())[rank] = Some(net);
            });
        }
    });
    let wall = start.elapsed().as_secs_f64();
    let losses = losses.into_inner().unwrap_or_else(|e| e.into_inner());
    let timings = timings.into_inner().unwrap_or_else(|e| e.into_inner());
    let iters_done = losses[0].len();
    let report = DistReport {
        losses: losses[0].clone(),
        per_rank_timings: timings,
        traces_total: traces_total.into_inner(),
        wall_secs: wall,
        comm_elems_per_iter: if iters_done > 0 {
            comm_elems.into_inner() as f64 / (iters_done * ranks) as f64
        } else {
            0.0
        },
    };
    let net = nets.into_inner().unwrap_or_else(|e| e.into_inner()).remove(0).expect("rank 0 net"); // etalumis: allow(panic-freedom, reason = "one network per rank by construction")
    (net, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use etalumis_core::Executor;
    use etalumis_simulators::BranchingModel;

    fn records(n: usize, seed: u64) -> Vec<TraceRecord> {
        let mut m = BranchingModel::standard();
        (0..n)
            .map(|i| {
                TraceRecord::from_trace(&Executor::sample_prior(&mut m, seed + i as u64), true)
            })
            .collect()
    }

    fn feed_channel(recs: Vec<TraceRecord>, capacity: usize) -> TraceChannel {
        // Unit-test producer: preload then close (capacity ≥ len).
        let chan = TraceChannel::bounded(capacity.max(recs.len()));
        for r in recs {
            chan.send(r).unwrap();
        }
        chan.close();
        chan
    }

    fn small_trainer(seed: u64) -> Trainer<Adam> {
        Trainer::new(
            IcNetwork::new(IcConfig::small([1, 1, 1], seed)),
            Adam::new(LrSchedule::Constant(2e-3)),
        )
    }

    fn params(net: &mut IcNetwork) -> Vec<(String, Vec<f32>)> {
        let mut out = Vec::new();
        net.visit_params("", &mut |n, p| out.push((n.to_string(), p.value.data().to_vec())));
        out
    }

    #[test]
    fn stream_training_reduces_loss_and_uses_every_trace() {
        let recs = records(192, 0);
        let chan = feed_channel(recs, 0);
        let mut trainer = small_trainer(1);
        let cfg =
            StreamTrainConfig { batch: 16, spill_after: 64, warmup: 48, ..Default::default() };
        let report = train_stream(&mut trainer, &chan, &cfg);
        assert_eq!(report.warmup_used, 48);
        assert_eq!(report.log.traces_seen, 192, "flush must train every delivered trace");
        let n = report.log.losses.len();
        assert!(n >= 3);
        let head = report.log.losses[0].1;
        let tail = report.log.losses[n - 1].1;
        assert!(tail < head, "streaming loss should fall: {head} -> {tail}");
        assert!(report.fills + report.spills == n);
    }

    #[test]
    fn live_and_offline_replay_are_bit_identical() {
        use etalumis_data::generate_dataset;
        let dir = std::env::temp_dir().join(format!("etalumis_strm_off_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let mut m = BranchingModel::standard();
        let ds = generate_dataset(&mut m, 96, 96, &dir, 3, true).unwrap();
        let cfg = StreamTrainConfig { batch: 8, spill_after: 32, warmup: 24, ..Default::default() };

        // "Live": records preloaded into a channel in dataset order.
        let all: Vec<usize> = (0..ds.len()).collect();
        let chan = feed_channel(ds.get_many(&all).unwrap(), 0);
        let mut live = small_trainer(7);
        let live_report = train_stream(&mut live, &chan, &cfg);

        // Offline replay of the same dataset with a tiny channel.
        let mut off = small_trainer(7);
        let off_report = train_stream_offline(&mut off, &ds, &cfg, 3).unwrap();

        assert_eq!(live_report.log.losses, off_report.log.losses);
        assert_eq!(params(&mut live.net), params(&mut off.net), "weights must be bit-identical");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn max_steps_closes_the_channel_instead_of_stranding_the_producer() {
        let chan = TraceChannel::bounded(2);
        let cfg = StreamTrainConfig {
            batch: 4,
            spill_after: 16,
            warmup: 8,
            max_steps: Some(2),
            ..Default::default()
        };
        std::thread::scope(|s| {
            let producer = s.spawn(|| {
                // Far more records than the trainer will take; must not hang.
                for r in records(200, 5) {
                    if chan.send(r).is_err() {
                        return true; // consumer closed on us — expected
                    }
                }
                chan.close();
                false
            });
            let mut trainer = small_trainer(3);
            let report = train_stream(&mut trainer, &chan, &cfg);
            assert_eq!(report.log.losses.len(), 2);
            assert!(producer.join().unwrap(), "producer should observe the early close");
        });
    }

    #[test]
    fn distributed_streaming_replicas_are_bit_identical_and_loss_falls() {
        let recs = records(256, 11);
        let cfg = StreamDistConfig {
            ranks: 2,
            batch: 8,
            spill_after: 64,
            warmup: 64,
            lr: LrSchedule::Constant(2e-3),
            ..Default::default()
        };
        let chan = feed_channel(recs.clone(), 0);
        let (mut net_a, report) =
            train_stream_distributed(&chan, IcConfig::small([1, 1, 1], 9), &cfg);
        assert!(!report.losses.is_empty());
        let n = report.losses.len();
        assert!(
            report.losses[n - 1] < report.losses[0],
            "distributed streaming loss should fall: {} -> {}",
            report.losses[0],
            report.losses[n - 1]
        );
        // Determinism: the identical stream reproduces the identical model.
        let chan = feed_channel(recs, 0);
        let (mut net_b, report_b) =
            train_stream_distributed(&chan, IcConfig::small([1, 1, 1], 9), &cfg);
        assert_eq!(report.losses, report_b.losses);
        assert_eq!(params(&mut net_a), params(&mut net_b));
    }
}
