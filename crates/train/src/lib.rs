//! # etalumis-train
//!
//! The inference-compilation training stack: everything between the trace
//! datasets of `etalumis-data` and the IC inference engine of
//! `etalumis-inference`.
//!
//! * [`network`] — the dynamic 3DCNN–LSTM architecture (paper §4.3):
//!   shared LSTM core + observation encoder with address-specific
//!   embeddings and proposal heads created on first encounter, offline
//!   layer pre-generation, Algorithm 1 sub-minibatch loss, and the
//!   [`etalumis_inference::ProposalProvider`] implementation used at
//!   inference time.
//! * [`trainer`] — the single-rank training loop with per-phase timing.
//! * [`allreduce`] — synchronous gradient reduction across rank threads
//!   with the paper's §4.4.4 ladder: dense per-tensor → non-null only (4×)
//!   → concatenated single-buffer.
//! * [`distributed`] — Algorithm 2: synchronous data-parallel training on
//!   rank threads with bit-identical replicas and Figure 4 instrumentation.
//! * [`streaming`] — the pull side of the streaming generate→train
//!   pipeline: train off a live bounded trace channel with online
//!   trace-type bucketing (no offline sort), an offline-replay comparator
//!   for teed runs, and the rank-parallel variant with the same
//!   leave-together collective discipline as [`distributed`].
//! * [`perfmodel`] — Table 1 platform registry and the calibrated analytic
//!   model standing in for Cori/Edison at 64–1,024 nodes (see DESIGN.md
//!   substitution table).

pub mod allreduce;
pub mod distributed;
pub mod network;
pub mod perfmodel;
pub mod streaming;
pub mod trainer;

pub use allreduce::{AllReduceCtx, AllReduceStrategy};
pub use distributed::{train_distributed, DistConfig, DistReport};
pub use network::{IcConfig, IcNetwork};
pub use perfmodel::{platforms, PhaseModel, Platform, ScalingModel, ScalingPoint};
pub use streaming::{
    train_stream, train_stream_distributed, train_stream_offline, StreamDistConfig,
    StreamTrainConfig, StreamTrainReport,
};
pub use trainer::{
    accumulate_minibatch, record_kernel_telemetry, sub_minibatches, PhaseTimings, StepResult,
    TrainLog, Trainer,
};
