//! Distributed synchronous data-parallel training (Algorithm 2).
//!
//! Ranks are OS threads, each holding an identical replica of the
//! pre-generated IC network (offline mode, §4.4) and its own optimizer
//! state; every iteration they read their minibatch from the shared sorted
//! dataset via the distributed sampler, compute gradients, average them with
//! a synchronous allreduce, and apply the same update — so all replicas stay
//! bit-identical, exactly like MPI synchronous SGD.
//!
//! Per-rank, per-iteration phase timings (minibatch read / forward /
//! backward / optimizer / sync) are recorded — the measurements behind the
//! paper's Figure 4 load-imbalance analysis.

use crate::allreduce::{AllReduceCtx, AllReduceStrategy};
use crate::network::{IcConfig, IcNetwork};
use crate::trainer::{accumulate_minibatch, PhaseTimings};
use etalumis_data::{DistributedSampler, SamplerConfig, TraceDataset};
use etalumis_nn::{Adam, LrSchedule, Module, Optimizer};
use parking_lot::Mutex;
use std::time::Instant;

/// Distributed-training configuration.
#[derive(Clone, Debug)]
pub struct DistConfig {
    /// Number of rank threads.
    pub ranks: usize,
    /// Local minibatch size per rank (paper: 64).
    pub minibatch_per_rank: usize,
    /// Training epochs over the dataset.
    pub epochs: usize,
    /// Cap on total iterations (None = full epochs).
    pub max_iterations: Option<usize>,
    /// Gradient-reduction strategy.
    pub strategy: AllReduceStrategy,
    /// Learning-rate schedule for Adam.
    pub lr: LrSchedule,
    /// Optional LARC trust coefficient (Adam-LARC when set).
    pub larc_trust: Option<f64>,
    /// Number of length buckets in the sampler (1 = none).
    pub buckets: usize,
    /// Sampler shuffle seed.
    pub seed: u64,
}

impl Default for DistConfig {
    fn default() -> Self {
        Self {
            ranks: 2,
            minibatch_per_rank: 16,
            epochs: 1,
            max_iterations: None,
            strategy: AllReduceStrategy::SparseConcat,
            lr: LrSchedule::Constant(1e-3),
            larc_trust: None,
            buckets: 1,
            seed: 0,
        }
    }
}

/// Outcome of a distributed run.
#[derive(Debug, Default)]
pub struct DistReport {
    /// Global mean loss per iteration (allreduced).
    pub losses: Vec<f64>,
    /// Phase timings: `[rank][iteration]`.
    pub per_rank_timings: Vec<Vec<PhaseTimings>>,
    /// Total traces consumed across ranks.
    pub traces_total: usize,
    /// Wall-clock seconds of the parallel section.
    pub wall_secs: f64,
    /// Scalar elements communicated per rank per iteration (mean).
    pub comm_elems_per_iter: f64,
}

impl DistReport {
    /// Aggregate throughput in traces/s.
    pub fn traces_per_sec(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.traces_total as f64 / self.wall_secs
        } else {
            0.0
        }
    }

    /// Figure 4 decomposition: per-phase (actual, best) times, where
    /// *actual* sums the per-iteration maxima over ranks (what the job
    /// really took) and *best* sums the per-iteration means (the
    /// no-imbalance bound).
    pub fn actual_vs_best(&self) -> (PhaseTimings, PhaseTimings) {
        let iters = self.per_rank_timings.iter().map(|r| r.len()).min().unwrap_or(0);
        let ranks = self.per_rank_timings.len();
        let mut actual = PhaseTimings::default();
        let mut best = PhaseTimings::default();
        for it in 0..iters {
            // Max total work across ranks (the rank everyone waits for).
            let mut max_total = 0.0;
            let mut max_rank = 0;
            let mut mean = PhaseTimings::default();
            for r in 0..ranks {
                let t = &self.per_rank_timings[r][it];
                let work = t.batch_read + t.forward + t.backward + t.optimizer;
                if work > max_total {
                    max_total = work;
                    max_rank = r;
                }
                mean.add(t);
            }
            actual.add(&self.per_rank_timings[max_rank][it]);
            best.add(&mean.scale(1.0 / ranks as f64));
        }
        (actual, best)
    }
}

pub(crate) fn allreduce_network(
    ctx: &AllReduceCtx,
    net: &mut IcNetwork,
    strategy: AllReduceStrategy,
) -> usize {
    let n = ctx.num_ranks() as f32;
    match strategy {
        AllReduceStrategy::DensePerTensor => {
            let mut elems = 0usize;
            net.visit_params("", &mut |_, p| {
                ctx.reduce_sum(p.grad.data_mut());
                p.grad.scale(1.0 / n);
                elems += p.grad.numel();
            });
            elems
        }
        AllReduceStrategy::SparsePerTensor => {
            let mut present = Vec::new();
            net.visit_params("", &mut |_, p| {
                present.push(p.grad.data().iter().any(|&x| x != 0.0));
            });
            ctx.reduce_or(&mut present);
            let mut elems = present.len();
            let mut i = 0usize;
            net.visit_params("", &mut |_, p| {
                if present[i] {
                    ctx.reduce_sum(p.grad.data_mut());
                    p.grad.scale(1.0 / n);
                    elems += p.grad.numel();
                }
                i += 1;
            });
            elems
        }
        AllReduceStrategy::SparseConcat => {
            let mut present = Vec::new();
            net.visit_params("", &mut |_, p| {
                present.push(p.grad.data().iter().any(|&x| x != 0.0));
            });
            ctx.reduce_or(&mut present);
            // Gather present grads into one buffer.
            let mut buf: Vec<f32> = Vec::new();
            let mut i = 0usize;
            net.visit_params("", &mut |_, p| {
                if present[i] {
                    buf.extend_from_slice(p.grad.data());
                }
                i += 1;
            });
            ctx.reduce_sum(&mut buf);
            let mut off = 0usize;
            let mut i = 0usize;
            let elems = present.len() + buf.len();
            net.visit_params("", &mut |_, p| {
                if present[i] {
                    let len = p.grad.numel();
                    for (dst, src) in p.grad.data_mut().iter_mut().zip(buf[off..off + len].iter()) {
                        *dst = src / n;
                    }
                    off += len;
                }
                i += 1;
            });
            elems
        }
    }
}

/// Run Algorithm 2: returns the rank-0 network (all replicas are identical)
/// and the run report.
///
/// A shard I/O error on any rank (truncated file, corrupt record — see
/// `etalumis_data::DecodeError`) aborts training with `Err` instead of
/// panicking the rank thread. Error propagation must not deadlock the
/// collectives: a rank whose minibatch read fails still participates in
/// that iteration's allreduce with zero gradients, and the failure bit
/// rides the existing loss reduction — so every rank learns of the failure
/// at the same synchronization point and they all leave the loop together,
/// replicas still bit-identical (the failed iteration applies no update).
pub fn train_distributed(
    dataset: &TraceDataset,
    net_config: IcConfig,
    dist: &DistConfig,
) -> std::io::Result<(IcNetwork, DistReport)> {
    let ranks = dist.ranks;
    let meta: Vec<(u64, u32)> = (0..dataset.len()).map(|i| dataset.meta(i)).collect();
    let sampler = DistributedSampler::try_new(
        meta,
        SamplerConfig {
            minibatch: dist.minibatch_per_rank,
            num_ranks: ranks,
            buckets: dist.buckets,
            seed: dist.seed,
        },
    )?;
    // Every rank pre-generates the same network from the same dataset.
    let all_indices: Vec<usize> = (0..dataset.len()).collect();
    let pregen_records = dataset.get_many(&all_indices)?;
    let ctx = AllReduceCtx::new(ranks);
    let losses: Mutex<Vec<Vec<f64>>> = Mutex::new(vec![Vec::new(); ranks]);
    let timings: Mutex<Vec<Vec<PhaseTimings>>> = Mutex::new(vec![Vec::new(); ranks]);
    let traces_total = std::sync::atomic::AtomicUsize::new(0);
    let comm_elems = std::sync::atomic::AtomicUsize::new(0);
    let nets: Mutex<Vec<Option<IcNetwork>>> = Mutex::new((0..ranks).map(|_| None).collect());
    let read_error: Mutex<Option<std::io::Error>> = Mutex::new(None);
    let start = Instant::now();
    std::thread::scope(|s| {
        for rank in 0..ranks {
            let ctx = &ctx;
            let sampler = &sampler;
            let pregen_records = &pregen_records;
            let losses = &losses;
            let timings = &timings;
            let traces_total = &traces_total;
            let comm_elems = &comm_elems;
            let nets = &nets;
            let read_error = &read_error;
            let net_config = net_config.clone();
            s.spawn(move || {
                let mut net = IcNetwork::new(net_config);
                net.pregenerate(pregen_records.iter());
                let mut opt = match dist.larc_trust {
                    Some(t) => Adam::with_larc(dist.lr.clone(), t),
                    None => Adam::new(dist.lr.clone()),
                };
                let mut iter_count = 0usize;
                'outer: for epoch in 0..dist.epochs {
                    let plan = sampler.epoch(epoch);
                    let iters = plan.iterations();
                    for it in 0..iters {
                        if let Some(cap) = dist.max_iterations {
                            if iter_count >= cap {
                                break 'outer;
                            }
                        }
                        let mut t = PhaseTimings::default();
                        let t0 = Instant::now();
                        // A failed read cannot simply break here: the other
                        // ranks are already committed to this iteration's
                        // collectives and would block forever. Participate
                        // with an empty minibatch (zero gradients) and
                        // raise the failure flag through the reduction.
                        let (records, failed) = match dataset.get_many(&plan.per_rank[rank][it]) {
                            Ok(r) => (r, 0.0),
                            Err(e) => {
                                read_error.lock().get_or_insert(e);
                                (Vec::new(), 1.0)
                            }
                        };
                        t.batch_read = t0.elapsed().as_secs_f64();
                        let res = accumulate_minibatch(&mut net, &records);
                        t.forward = res.timings.forward;
                        t.backward = res.timings.backward;
                        // Gradient + loss + failure-bit allreduce (the sync
                        // phase).
                        let ts = Instant::now();
                        let elems = allreduce_network(ctx, &mut net, dist.strategy);
                        let mut stats = [res.loss * res.used as f64, res.used as f64, failed];
                        {
                            let mut f32buf = [stats[0] as f32, stats[1] as f32, stats[2] as f32];
                            ctx.reduce_sum(&mut f32buf);
                            stats = [f32buf[0] as f64, f32buf[1] as f64, f32buf[2] as f64];
                        }
                        t.sync = ts.elapsed().as_secs_f64();
                        if stats[2] > 0.0 {
                            // Some rank failed its read this iteration:
                            // every rank sees the same reduced bit and
                            // leaves here, before the optimizer step, so
                            // the replicas stay identical and nobody is
                            // left waiting at the next collective.
                            break 'outer;
                        }
                        let topt = Instant::now();
                        opt.begin_step();
                        net.visit_params("", &mut |n, p| opt.update(n, p));
                        t.optimizer = topt.elapsed().as_secs_f64();
                        let global_loss =
                            if stats[1] > 0.0 { stats[0] / stats[1] } else { f64::NAN };
                        losses.lock()[rank].push(global_loss);
                        timings.lock()[rank].push(t);
                        traces_total.fetch_add(res.used, std::sync::atomic::Ordering::Relaxed);
                        comm_elems.fetch_add(elems, std::sync::atomic::Ordering::Relaxed);
                        iter_count += 1;
                    }
                }
                nets.lock()[rank] = Some(net);
            });
        }
    });
    if let Some(e) = read_error.into_inner() {
        return Err(e);
    }
    let wall = start.elapsed().as_secs_f64();
    let losses = losses.into_inner();
    let timings = timings.into_inner();
    let iters_done = losses[0].len();
    let report = DistReport {
        losses: losses[0].clone(),
        per_rank_timings: timings,
        traces_total: traces_total.into_inner(),
        wall_secs: wall,
        comm_elems_per_iter: if iters_done > 0 {
            comm_elems.into_inner() as f64 / (iters_done * ranks) as f64
        } else {
            0.0
        },
    };
    let net = nets.into_inner().remove(0).expect("rank 0 network"); // etalumis: allow(panic-freedom, reason = "one network per rank by construction")
    Ok((net, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use etalumis_data::{generate_dataset, sort_dataset};
    use etalumis_simulators::BranchingModel;
    use std::path::PathBuf;

    fn tmp(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("etalumis_dist_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn small_ic() -> IcConfig {
        IcConfig::small([1, 1, 1], 5)
    }

    #[test]
    fn distributed_losses_decrease_and_replicas_agree() {
        let dir = tmp("train");
        let mut m = BranchingModel::standard();
        let ds = generate_dataset(&mut m, 128, 64, &dir, 1, true).unwrap();
        let ds = sort_dataset(&ds, &dir.join("sorted"), 64).unwrap();
        let dist = DistConfig {
            ranks: 2,
            minibatch_per_rank: 8,
            epochs: 6,
            lr: LrSchedule::Constant(2e-3),
            ..Default::default()
        };
        let (_net, report) = train_distributed(&ds, small_ic(), &dist).unwrap();
        assert!(!report.losses.is_empty());
        let n = report.losses.len();
        let head: f64 = report.losses[..3].iter().sum::<f64>() / 3.0;
        let tail: f64 = report.losses[n - 3..].iter().sum::<f64>() / 3.0;
        assert!(tail < head, "distributed loss should fall: {head} -> {tail}");
        assert!(report.traces_per_sec() > 0.0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn two_ranks_match_single_rank_big_batch() {
        // One distributed iteration with 2 ranks × B equals one serial
        // iteration with 2B traces (up to f32 reduction order).
        let dir = tmp("equiv");
        let mut m = BranchingModel::standard();
        let ds = generate_dataset(&mut m, 32, 32, &dir, 3, true).unwrap();
        let ds = sort_dataset(&ds, &dir.join("sorted"), 32).unwrap();
        let dist = DistConfig {
            ranks: 2,
            minibatch_per_rank: 8,
            epochs: 1,
            max_iterations: Some(1),
            lr: LrSchedule::Constant(1e-3),
            seed: 4,
            ..Default::default()
        };
        let (dnet, report) = train_distributed(&ds, small_ic(), &dist).unwrap();
        // Reconstruct the union of both ranks' first minibatches.
        let meta: Vec<(u64, u32)> = (0..ds.len()).map(|i| ds.meta(i)).collect();
        let sampler = DistributedSampler::new(
            meta,
            SamplerConfig { minibatch: 8, num_ranks: 2, buckets: 1, seed: 4 },
        );
        let plan = sampler.epoch(0);
        let mut union: Vec<usize> = plan.per_rank[0][0].clone();
        union.extend(&plan.per_rank[1][0]);
        let records = ds.get_many(&union).unwrap();
        let all: Vec<usize> = (0..ds.len()).collect();
        let pregen = ds.get_many(&all).unwrap();
        let mut net = IcNetwork::new(small_ic());
        net.pregenerate(pregen.iter());
        let mut trainer = crate::trainer::Trainer::new(net, Adam::new(LrSchedule::Constant(1e-3)));
        let res = trainer.step(&records);
        assert_eq!(res.used, 16);
        // Compare parameters.
        let mut pa = Vec::new();
        let mut dnet = dnet;
        dnet.visit_params("", &mut |n, p| pa.push((n.to_string(), p.value.clone())));
        let mut pb = Vec::new();
        trainer.net.visit_params("", &mut |n, p| pb.push((n.to_string(), p.value.clone())));
        assert_eq!(pa.len(), pb.len());
        let mut max_diff = 0.0f32;
        for ((na, va), (_nb, vb)) in pa.iter().zip(pb.iter()) {
            for (a, b) in va.data().iter().zip(vb.data().iter()) {
                let d = (a - b).abs();
                if d > max_diff {
                    max_diff = d;
                }
            }
            let _ = na;
        }
        assert!(
            max_diff < 2e-4,
            "2-rank and big-batch serial updates should match: max diff {max_diff}"
        );
        assert!(report.comm_elems_per_iter > 0.0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn distributed_training_surfaces_shard_errors_instead_of_panicking() {
        let dir = tmp("err");
        let mut m = BranchingModel::standard();
        let ds = generate_dataset(&mut m, 64, 32, &dir, 8, true).unwrap();
        let ds = sort_dataset(&ds, &dir.join("sorted"), 32).unwrap();
        // Truncate a shard under the open dataset: every rank's read path
        // must surface the error as Err — no panicking rank threads, no
        // rank left blocking in a collective.
        let bytes = std::fs::read(&ds.shards[0]).unwrap();
        std::fs::write(&ds.shards[0], &bytes[..bytes.len() / 2]).unwrap();
        let dist = DistConfig {
            ranks: 2,
            minibatch_per_rank: 8,
            epochs: 1,
            lr: LrSchedule::Constant(1e-3),
            ..Default::default()
        };
        let res = train_distributed(&ds, small_ic(), &dist).map(|_| ());
        assert!(res.is_err(), "a truncated shard must surface as Err, not a panic");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn all_strategies_produce_identical_training() {
        let dir = tmp("strat");
        let mut m = BranchingModel::standard();
        let ds = generate_dataset(&mut m, 64, 64, &dir, 6, true).unwrap();
        let ds = sort_dataset(&ds, &dir.join("sorted"), 64).unwrap();
        let mut final_losses = Vec::new();
        for strategy in [
            AllReduceStrategy::DensePerTensor,
            AllReduceStrategy::SparsePerTensor,
            AllReduceStrategy::SparseConcat,
        ] {
            let dist = DistConfig {
                ranks: 2,
                minibatch_per_rank: 8,
                epochs: 2,
                strategy,
                lr: LrSchedule::Constant(1e-3),
                seed: 9,
                ..Default::default()
            };
            let (_, report) = train_distributed(&ds, small_ic(), &dist).unwrap();
            final_losses.push(report.losses.clone());
        }
        assert_eq!(final_losses[0], final_losses[1], "dense vs sparse");
        assert_eq!(final_losses[0], final_losses[2], "dense vs concat");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
