//! Single-process IC training (the per-rank inner loop of Algorithm 2).
//!
//! A minibatch is split into sub-minibatches by trace type (Algorithm 1),
//! each processed in one batched forward/backward pass; gradients are scaled
//! by 1/B, optionally clipped, and applied with the configured optimizer.

use crate::network::IcNetwork;
use etalumis_data::{DistributedSampler, SamplerConfig, TraceDataset, TraceRecord};
use etalumis_nn::{clip_grad_norm, Module, Optimizer};
use etalumis_telemetry::Telemetry;
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// Per-iteration wall-time breakdown (the phases of Figure 4).
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseTimings {
    /// Minibatch read from the dataset (seconds).
    pub batch_read: f64,
    /// NN forward (CNN + LSTM).
    pub forward: f64,
    /// NN backward (heads + BPTT + CNN backward).
    pub backward: f64,
    /// Optimizer update.
    pub optimizer: f64,
    /// Gradient/loss synchronization (distributed only).
    pub sync: f64,
}

impl PhaseTimings {
    /// Total time across all phases.
    pub fn total(&self) -> f64 {
        self.batch_read + self.forward + self.backward + self.optimizer + self.sync
    }

    /// Elementwise sum.
    pub fn add(&mut self, other: &PhaseTimings) {
        self.batch_read += other.batch_read;
        self.forward += other.forward;
        self.backward += other.backward;
        self.optimizer += other.optimizer;
        self.sync += other.sync;
    }

    /// Elementwise scale.
    pub fn scale(&self, s: f64) -> PhaseTimings {
        PhaseTimings {
            batch_read: self.batch_read * s,
            forward: self.forward * s,
            backward: self.backward * s,
            optimizer: self.optimizer * s,
            sync: self.sync * s,
        }
    }
}

/// Split records into sub-minibatches sharing one trace type (Algorithm 1).
pub fn sub_minibatches(records: &[TraceRecord]) -> Vec<Vec<&TraceRecord>> {
    let mut by_type: BTreeMap<u64, Vec<&TraceRecord>> = BTreeMap::new();
    for r in records {
        by_type.entry(r.trace_type).or_default().push(r);
    }
    let mut subs: Vec<Vec<&TraceRecord>> = by_type.into_values().collect();
    // Deterministic order (largest first helps batching efficiency).
    subs.sort_by(|a, b| b.len().cmp(&a.len()).then(a[0].trace_type.cmp(&b[0].trace_type)));
    subs
}

/// Result of one training minibatch.
#[derive(Clone, Copy, Debug)]
pub struct StepResult {
    /// Mean −log q loss over the traces actually used.
    pub loss: f64,
    /// Traces used (unknown-address traces are dropped when frozen).
    pub used: usize,
    /// Traces dropped.
    pub dropped: usize,
    /// Number of sub-minibatches (1 = perfectly homogeneous batch).
    pub sub_minibatches: usize,
    /// Phase timings.
    pub timings: PhaseTimings,
}

/// Compute gradients for one minibatch (no optimizer step): the shared part
/// of serial and distributed training. Gradients are left scaled by 1/used.
pub fn accumulate_minibatch(net: &mut IcNetwork, records: &[TraceRecord]) -> StepResult {
    net.zero_grad();
    let subs = sub_minibatches(records);
    let n_subs = subs.len();
    let mut loss_sum = 0.0;
    let mut used = 0usize;
    let mut dropped = 0usize;
    let mut timings = PhaseTimings::default();
    for sub in subs {
        match net.loss_sub_minibatch(&sub) {
            Some(l) => {
                loss_sum += l;
                used += sub.len();
                let (f, b) = net.last_phase_secs;
                timings.forward += f;
                timings.backward += b;
            }
            None => dropped += sub.len(),
        }
    }
    if used > 0 {
        let scale = 1.0 / used as f32;
        net.visit_params("", &mut |_, p| p.grad.scale(scale));
    }
    StepResult {
        loss: if used > 0 { loss_sum / used as f64 } else { f64::NAN },
        used,
        dropped,
        sub_minibatches: n_subs,
        timings,
    }
}

/// Training-progress record.
#[derive(Clone, Debug, Default)]
pub struct TrainLog {
    /// (iteration, mean loss) pairs.
    pub losses: Vec<(usize, f64)>,
    /// Total traces consumed.
    pub traces_seen: usize,
    /// Wall time of the training loop in seconds.
    pub wall_secs: f64,
}

impl TrainLog {
    /// Throughput in traces/s.
    pub fn traces_per_sec(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.traces_seen as f64 / self.wall_secs
        } else {
            0.0
        }
    }
}

/// Emit the active kernel backend, pool size, and dispatch counters into a
/// telemetry stream: `kernel.backend_avx2` / `kernel.pool_threads` gauges
/// (which land in `RUN_METRICS.json` and the run-report header) plus
/// `kernel.dispatch_avx2` / `kernel.dispatch_scalar` counters drained from
/// the process-wide dispatch tally.
pub fn record_kernel_telemetry(tel: &Telemetry) {
    if !tel.is_enabled() {
        return;
    }
    use etalumis_tensor::simd;
    tel.gauge(
        "kernel.backend_avx2",
        if simd::active_backend() == simd::Backend::Avx2Fma { 1.0 } else { 0.0 },
    );
    tel.gauge("kernel.pool_threads", etalumis_tensor::pool::num_threads() as f64);
    let (avx2, scalar) = simd::take_dispatch_counts();
    if avx2 > 0 {
        tel.count("kernel.dispatch_avx2", avx2);
    }
    if scalar > 0 {
        tel.count("kernel.dispatch_scalar", scalar);
    }
}

/// Single-process trainer.
pub struct Trainer<O: Optimizer> {
    /// The network being trained.
    pub net: IcNetwork,
    /// Optimizer.
    pub opt: O,
    /// Optional global-norm gradient clip.
    pub grad_clip: Option<f64>,
    /// Telemetry handle (disabled by default). When enabled, each
    /// [`Trainer::step`] emits a `train.step` span with nested
    /// `train.forward` / `train.backward` / `train.optimizer` phase spans,
    /// a `train.sub_minibatches` gauge, and a `train.steps` counter.
    pub tel: Telemetry,
}

impl<O: Optimizer> Trainer<O> {
    /// New trainer.
    pub fn new(net: IcNetwork, opt: O) -> Self {
        Self { net, opt, grad_clip: None, tel: Telemetry::disabled() }
    }

    /// Attach a telemetry handle (builder form of setting [`Trainer::tel`]).
    pub fn with_telemetry(mut self, tel: Telemetry) -> Self {
        self.tel = tel;
        self
    }

    /// One synchronous step on a minibatch; returns the step result.
    pub fn step(&mut self, records: &[TraceRecord]) -> StepResult {
        let step_span = self.tel.span("train.step");
        let mut res = accumulate_minibatch(&mut self.net, records);
        if let Some(c) = self.grad_clip {
            clip_grad_norm(&mut self.net, c);
        }
        let t = Instant::now();
        self.opt.begin_step();
        let opt = &mut self.opt;
        self.net.visit_params("", &mut |n, p| opt.update(n, p));
        res.timings.optimizer = t.elapsed().as_secs_f64();
        if self.tel.is_enabled() {
            self.tel.span_record("train.forward", Duration::from_secs_f64(res.timings.forward));
            self.tel.span_record("train.backward", Duration::from_secs_f64(res.timings.backward));
            self.tel.span_record("train.optimizer", Duration::from_secs_f64(res.timings.optimizer));
            self.tel.gauge("train.sub_minibatches", res.sub_minibatches as f64);
            self.tel.count("train.steps", 1);
            record_kernel_telemetry(&self.tel);
        }
        drop(step_span);
        res
    }

    /// Evaluate mean loss on records without touching the weights.
    pub fn evaluate(&mut self, records: &[TraceRecord]) -> f64 {
        let res = accumulate_minibatch(&mut self.net, records);
        self.net.zero_grad();
        res.loss
    }

    /// Train for `epochs` epochs over a dataset with the given sampler
    /// parameters (single rank).
    ///
    /// A shard I/O error (truncated file, corrupt record — see
    /// `etalumis_data::DecodeError`) surfaces as the `Err` instead of
    /// aborting the process; the log accumulated so far is lost with it,
    /// so callers that care should checkpoint externally.
    pub fn train_epochs(
        &mut self,
        dataset: &TraceDataset,
        minibatch: usize,
        epochs: usize,
        seed: u64,
    ) -> std::io::Result<TrainLog> {
        let meta: Vec<(u64, u32)> = (0..dataset.len()).map(|i| dataset.meta(i)).collect();
        let sampler = DistributedSampler::try_new(
            meta,
            SamplerConfig { minibatch, num_ranks: 1, buckets: 1, seed },
        )?;
        let mut log = TrainLog::default();
        let start = Instant::now();
        let mut iter = 0usize;
        for e in 0..epochs {
            let plan = sampler.epoch(e);
            for mb in &plan.per_rank[0] {
                let read_started = Instant::now();
                let records = dataset.get_many(mb)?;
                self.tel.span_record("train.batch_read", read_started.elapsed());
                let res = self.step(&records);
                log.losses.push((iter, res.loss));
                log.traces_seen += res.used;
                iter += 1;
            }
        }
        log.wall_secs = start.elapsed().as_secs_f64();
        Ok(log)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::IcConfig;
    use etalumis_core::Executor;
    use etalumis_nn::{Adam, LrSchedule};
    use etalumis_simulators::BranchingModel;

    fn records(n: usize) -> Vec<TraceRecord> {
        let mut m = BranchingModel::standard();
        (0..n)
            .map(|s| TraceRecord::from_trace(&Executor::sample_prior(&mut m, s as u64), true))
            .collect()
    }

    #[test]
    fn sub_minibatch_split_is_exhaustive_and_homogeneous() {
        let recs = records(40);
        let subs = sub_minibatches(&recs);
        let total: usize = subs.iter().map(|s| s.len()).sum();
        assert_eq!(total, 40);
        for sub in &subs {
            let t = sub[0].trace_type;
            assert!(sub.iter().all(|r| r.trace_type == t));
        }
    }

    #[test]
    fn trainer_reduces_loss_over_steps() {
        let recs = records(48);
        let mut net = IcNetwork::new(IcConfig::small([1, 1, 1], 1));
        net.pregenerate(recs.iter());
        let mut trainer = Trainer::new(net, Adam::new(LrSchedule::Constant(2e-3)));
        trainer.grad_clip = Some(10.0);
        let mut first = 0.0;
        let mut last = 0.0;
        for it in 0..50 {
            let res = trainer.step(&recs);
            assert_eq!(res.used, 48);
            assert_eq!(res.dropped, 0);
            if it == 0 {
                first = res.loss;
            }
            last = res.loss;
        }
        assert!(last < first, "loss {first} -> {last}");
    }

    #[test]
    fn train_epochs_surfaces_shard_errors_instead_of_panicking() {
        use etalumis_data::generate_dataset;
        use etalumis_simulators::BranchingModel;
        let dir = std::env::temp_dir().join(format!("etalumis_tr_err_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let mut m = BranchingModel::standard();
        let ds = generate_dataset(&mut m, 24, 12, &dir, 5, true).unwrap();
        let all: Vec<usize> = (0..ds.len()).collect();
        let pregen = ds.get_many(&all).unwrap();
        let mut net = IcNetwork::new(IcConfig::small([1, 1, 1], 1));
        net.pregenerate(pregen.iter());
        let mut trainer = Trainer::new(net, Adam::new(LrSchedule::Constant(1e-3)));
        // Healthy dataset trains fine.
        assert!(trainer.train_epochs(&ds, 8, 1, 0).is_ok());
        // Truncate a shard under the open dataset: the next epoch's reads
        // must return the I/O error, not abort the process.
        let bytes = std::fs::read(&ds.shards[0]).unwrap();
        std::fs::write(&ds.shards[0], &bytes[..bytes.len() / 2]).unwrap();
        let res = trainer.train_epochs(&ds, 8, 1, 0);
        assert!(res.is_err(), "a truncated shard must surface as Err, not a panic");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn evaluate_does_not_change_weights() {
        let recs = records(16);
        let mut net = IcNetwork::new(IcConfig::small([1, 1, 1], 2));
        net.pregenerate(recs.iter());
        let mut trainer = Trainer::new(net, Adam::new(LrSchedule::Constant(1e-3)));
        let mut before = Vec::new();
        trainer.net.visit_params("", &mut |_, p| before.push(p.value.clone()));
        let l1 = trainer.evaluate(&recs);
        let l2 = trainer.evaluate(&recs);
        assert_eq!(l1, l2);
        let mut after = Vec::new();
        trainer.net.visit_params("", &mut |_, p| after.push(p.value.clone()));
        assert_eq!(before, after);
    }
}
