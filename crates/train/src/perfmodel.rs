//! Platform registry and the analytic scaling performance model.
//!
//! This module is the documented substitution for the hardware we do not
//! have (DESIGN.md §3): Cori (Cray XC40, 2,388 HSW nodes) and Edison (Cray
//! XC30, 5,586 IVB nodes). Algorithm 2 itself runs for real on rank threads
//! (see [`crate::distributed`]); what is *modeled* is only the wall-clock
//! behaviour at node counts this machine cannot host:
//!
//! * per-rank, per-iteration work time varies log-normally (trace-length
//!   load imbalance, §6.2/§7.2): iteration time is the max over ranks;
//! * the gradient allreduce costs a latency term (log₂ ranks stages) plus a
//!   bandwidth term (ring allreduce over the ~171M-parameter gradient);
//! * the imbalance dispersion σ is calibrated against the paper's measured
//!   scaling efficiencies (≈0.5 on Cori, ≈0.79 on Edison at 1,024 nodes).
//!
//! [`Platform`] encodes Table 1 (CPU models) plus the peak single-precision
//! flop rates and the paper's measured Table 2 rows for comparison printing.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// One CPU platform row (Table 1 + Table 2 reference data).
#[derive(Clone, Copy, Debug)]
pub struct Platform {
    /// Three-letter code used in the paper.
    pub code: &'static str,
    /// Full CPU model string.
    pub model: &'static str,
    /// Cores per socket.
    pub cores_per_socket: u32,
    /// Base clock in GHz.
    pub ghz: f64,
    /// Peak single-precision Gflop/s per socket.
    pub peak_sp_gflops: f64,
    /// Paper Table 2: 1-socket traces/s.
    pub paper_traces_1s: f64,
    /// Paper Table 2: 2-socket traces/s.
    pub paper_traces_2s: f64,
    /// Paper Table 2: 1-socket Gflop/s.
    pub paper_gflops: f64,
}

/// The five platforms of Table 1/2.
pub fn platforms() -> [Platform; 5] {
    [
        Platform {
            code: "IVB",
            model: "E5-2695 v2 @ 2.40GHz (12 cores/socket)",
            cores_per_socket: 12,
            ghz: 2.40,
            peak_sp_gflops: 460.8,
            paper_traces_1s: 13.9,
            paper_traces_2s: 25.6,
            paper_gflops: 196.0,
        },
        Platform {
            code: "HSW",
            model: "E5-2698 v3 @ 2.30GHz (16 cores/socket)",
            cores_per_socket: 16,
            ghz: 2.30,
            peak_sp_gflops: 1177.6,
            paper_traces_1s: 32.1,
            paper_traces_2s: 56.5,
            paper_gflops: 453.0,
        },
        Platform {
            code: "BDW",
            model: "E5-2697A v4 @ 2.60GHz (16 cores/socket)",
            cores_per_socket: 16,
            ghz: 2.60,
            peak_sp_gflops: 1331.2,
            paper_traces_1s: 30.5,
            paper_traces_2s: 57.8,
            paper_gflops: 430.0,
        },
        Platform {
            code: "SKL",
            model: "Platinum 8170 @ 2.10GHz (26 cores/socket)",
            cores_per_socket: 26,
            ghz: 2.10,
            peak_sp_gflops: 3494.4,
            paper_traces_1s: 49.9,
            paper_traces_2s: 82.7,
            paper_gflops: 704.0,
        },
        Platform {
            code: "CSL",
            model: "Gold 6252 @ 2.10GHz (24 cores/socket)",
            cores_per_socket: 24,
            ghz: 2.10,
            peak_sp_gflops: 3225.6,
            paper_traces_1s: 51.1,
            paper_traces_2s: 93.1,
            paper_gflops: 720.0,
        },
    ]
}

/// Deterministic standard-normal stream for the model (Box–Muller).
fn randn(rng: &mut StdRng) -> f64 {
    etalumis_distributions::sampling::standard_normal(rng)
}

/// Weak-scaling performance model of the distributed trainer.
#[derive(Clone, Debug)]
pub struct ScalingModel {
    /// System name for reports.
    pub system: &'static str,
    /// Mean per-rank throughput (traces/s) at 1 rank.
    pub traces_per_rank_per_sec: f64,
    /// MPI ranks per node (paper: 2, one per socket).
    pub ranks_per_node: usize,
    /// Local minibatch per rank (paper: 64).
    pub local_minibatch: usize,
    /// Log-normal σ of per-rank per-iteration work (load imbalance).
    pub work_sigma: f64,
    /// Allreduce latency per log₂ stage (seconds).
    pub allreduce_latency: f64,
    /// Gradient size in bytes (paper: 171,732,688 params × 4 B).
    pub grad_bytes: f64,
    /// Effective allreduce bandwidth (bytes/s).
    pub bandwidth: f64,
    /// RNG seed.
    pub seed: u64,
}

impl ScalingModel {
    /// Cori (HSW) calibration: single node 56.5 traces/s; σ chosen so the
    /// 1,024-node average efficiency lands near the paper's ≈0.5.
    pub fn cori() -> Self {
        Self {
            system: "Cori",
            traces_per_rank_per_sec: 56.5 / 2.0,
            ranks_per_node: 2,
            local_minibatch: 64,
            work_sigma: 0.22,
            allreduce_latency: 8e-5,
            grad_bytes: 171_732_688.0 * 4.0,
            bandwidth: 5.0e9,
            seed: 20190901,
        }
    }

    /// Edison (IVB) calibration: single node 25.6 traces/s; σ for ≈0.79
    /// efficiency at 1,024 nodes (slower cores make the same absolute
    /// imbalance relatively smaller).
    pub fn edison() -> Self {
        Self {
            system: "Edison",
            traces_per_rank_per_sec: 25.6 / 2.0,
            ranks_per_node: 2,
            local_minibatch: 64,
            work_sigma: 0.065,
            allreduce_latency: 8e-5,
            grad_bytes: 171_732_688.0 * 4.0,
            bandwidth: 5.0e9,
            seed: 20190902,
        }
    }

    /// Allreduce time for the gradient at a given rank count
    /// (ring bandwidth term + log₂ latency term).
    pub fn allreduce_time(&self, ranks: usize) -> f64 {
        if ranks <= 1 {
            return 0.0;
        }
        let stages = (ranks as f64).log2().ceil();
        let ring = 2.0 * (ranks as f64 - 1.0) / ranks as f64 * self.grad_bytes / self.bandwidth;
        self.allreduce_latency * stages + ring
    }

    fn simulate_raw(&self, nodes: usize, iterations: usize) -> (f64, f64) {
        let ranks = nodes * self.ranks_per_node;
        let mut rng = StdRng::seed_from_u64(self.seed ^ (nodes as u64) << 20);
        let mean_work = self.local_minibatch as f64 / self.traces_per_rank_per_sec;
        // Log-normal with unit mean: exp(σZ − σ²/2).
        let comm = self.allreduce_time(ranks);
        let mut throughputs = Vec::with_capacity(iterations);
        for _ in 0..iterations {
            // Iteration time = slowest rank + allreduce. Sampling `ranks`
            // values per iteration is O(ranks·iters) — fine up to 1024 nodes.
            let mut max_work = 0.0f64;
            for _ in 0..ranks {
                let f = (self.work_sigma * randn(&mut rng)
                    - 0.5 * self.work_sigma * self.work_sigma)
                    .exp();
                let w = mean_work * f;
                if w > max_work {
                    max_work = w;
                }
            }
            let t_iter = max_work + comm;
            throughputs.push((ranks * self.local_minibatch) as f64 / t_iter);
        }
        let avg = throughputs.iter().sum::<f64>() / throughputs.len() as f64;
        let peak = throughputs.iter().cloned().fold(0.0f64, f64::max);
        (avg, peak)
    }

    /// Simulate `iterations` synchronous iterations at `nodes` nodes.
    ///
    /// The ideal curve is "derived from the mean single-node rate" exactly
    /// as in the paper's Figure 6, so `efficiency()` at 1 node is 1.
    pub fn simulate(&self, nodes: usize, iterations: usize) -> ScalingPoint {
        let (single_avg, _) = self.simulate_raw(1, iterations.max(200));
        let (avg, peak) = self.simulate_raw(nodes, iterations);
        ScalingPoint {
            nodes,
            avg_traces_per_sec: avg,
            peak_traces_per_sec: peak,
            ideal: single_avg * nodes as f64,
        }
    }
}

/// One point on the weak-scaling curve.
#[derive(Clone, Copy, Debug)]
pub struct ScalingPoint {
    /// Node count.
    pub nodes: usize,
    /// Mean throughput over iterations.
    pub avg_traces_per_sec: f64,
    /// Best single iteration.
    pub peak_traces_per_sec: f64,
    /// Ideal (linear) scaling from the single-rank rate.
    pub ideal: f64,
}

impl ScalingPoint {
    /// Average scaling efficiency vs ideal.
    pub fn efficiency(&self) -> f64 {
        self.avg_traces_per_sec / self.ideal
    }
}

/// Figure 4 phase model: per-trace phase milliseconds on one socket
/// (defaults = the paper's measured BDW numbers) plus the imbalance σ.
#[derive(Clone, Debug)]
pub struct PhaseModel {
    /// msec/trace spent reading the minibatch.
    pub batch_read: f64,
    /// msec/trace in the forward pass.
    pub forward: f64,
    /// msec/trace in the backward pass.
    pub backward: f64,
    /// msec/trace in the optimizer.
    pub optimizer: f64,
    /// Log-normal σ of per-rank work.
    pub work_sigma: f64,
    /// Sync (allreduce) msec/trace at 2 sockets; grows with log₂ ranks.
    pub sync_base: f64,
    /// RNG seed.
    pub seed: u64,
}

impl PhaseModel {
    /// Paper Figure 4 calibration (BDW, msec per trace).
    pub fn paper_bdw() -> Self {
        Self {
            batch_read: 4.4,
            forward: 9.7,
            backward: 16.6,
            optimizer: 2.1,
            work_sigma: 0.10,
            sync_base: 1.9,
            seed: 4,
        }
    }

    /// Simulate the per-phase (actual, best, sync) breakdown at a socket
    /// count: *best* is the no-imbalance per-phase mean; *actual* scales the
    /// work phases by the expected max-over-ranks factor.
    pub fn breakdown(&self, sockets: usize, iterations: usize) -> Fig4Row {
        let mut rng = StdRng::seed_from_u64(self.seed ^ (sockets as u64) << 8);
        let mut max_factor_sum = 0.0f64;
        for _ in 0..iterations {
            let mut mx = 0.0f64;
            for _ in 0..sockets.max(1) {
                let f = (self.work_sigma * randn(&mut rng)
                    - 0.5 * self.work_sigma * self.work_sigma)
                    .exp();
                if f > mx {
                    mx = f;
                }
            }
            max_factor_sum += mx;
        }
        let imbalance = max_factor_sum / iterations as f64;
        let sync = if sockets <= 1 {
            0.0
        } else {
            self.sync_base * (1.0 + 0.25 * (sockets as f64).log2())
        };
        Fig4Row {
            sockets,
            best: [self.batch_read, self.forward, self.backward, self.optimizer],
            actual: [
                self.batch_read * imbalance,
                self.forward * imbalance,
                self.backward * imbalance,
                self.optimizer * imbalance,
            ],
            sync,
            imbalance_pct: (imbalance - 1.0) * 100.0,
        }
    }
}

/// One column of the Figure 4 chart (normalized msec/trace).
#[derive(Clone, Copy, Debug)]
pub struct Fig4Row {
    /// Socket count.
    pub sockets: usize,
    /// Per-phase best times [read, forward, backward, optimizer].
    pub best: [f64; 4],
    /// Per-phase actual times (with imbalance).
    pub actual: [f64; 4],
    /// Sync time.
    pub sync: f64,
    /// Load imbalance percentage (actual/best − 1).
    pub imbalance_pct: f64,
}

impl Fig4Row {
    /// Total actual time per trace.
    pub fn total_actual(&self) -> f64 {
        self.actual.iter().sum::<f64>() + self.sync
    }
    /// Total best time per trace.
    pub fn total_best(&self) -> f64 {
        self.best.iter().sum::<f64>() + self.sync
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn platform_peaks_match_cores_times_clock() {
        for p in platforms() {
            // flops/cycle per core: 16 for IVB (AVX), 32 for HSW/BDW (FMA),
            // 64 for SKL/CSL (AVX-512).
            let fpc = match p.code {
                "IVB" => 16.0,
                "HSW" | "BDW" => 32.0,
                _ => 64.0,
            };
            let peak = p.cores_per_socket as f64 * p.ghz * fpc;
            assert!(
                (peak - p.peak_sp_gflops).abs() < 1.0,
                "{}: computed {peak} vs table {}",
                p.code,
                p.peak_sp_gflops
            );
            // Paper % of peak between 15 and 50.
            let pct = p.paper_gflops / p.peak_sp_gflops * 100.0;
            assert!((15.0..50.0).contains(&pct), "{}: {pct}%", p.code);
        }
    }

    #[test]
    fn scaling_model_matches_paper_efficiencies() {
        let cori = ScalingModel::cori().simulate(1024, 150);
        assert!(
            (cori.efficiency() - 0.5).abs() < 0.1,
            "Cori efficiency {} should be ≈0.5",
            cori.efficiency()
        );
        assert!(
            cori.avg_traces_per_sec > 20_000.0 && cori.avg_traces_per_sec < 40_000.0,
            "Cori 1024-node avg {}",
            cori.avg_traces_per_sec
        );
        let edison = ScalingModel::edison().simulate(1024, 150);
        assert!(
            (edison.efficiency() - 0.79).abs() < 0.1,
            "Edison efficiency {} should be ≈0.79",
            edison.efficiency()
        );
    }

    #[test]
    fn efficiency_degrades_monotonically_in_scale() {
        let m = ScalingModel::cori();
        let e1 = m.simulate(1, 200).efficiency();
        let e64 = m.simulate(64, 200).efficiency();
        let e1024 = m.simulate(1024, 100).efficiency();
        assert!(e1 > e64 && e64 > e1024, "{e1} > {e64} > {e1024}");
        // Single node defines the ideal rate (paper Figure 6 convention).
        assert!((e1 - 1.0).abs() < 0.05, "single-node efficiency {e1}");
    }

    #[test]
    fn peak_exceeds_average() {
        let p = ScalingModel::cori().simulate(256, 100);
        assert!(p.peak_traces_per_sec > p.avg_traces_per_sec);
        assert!(p.peak_traces_per_sec <= p.ideal * 1.2);
    }

    #[test]
    fn fig4_imbalance_grows_with_sockets() {
        let m = PhaseModel::paper_bdw();
        let r2 = m.breakdown(2, 400);
        let r64 = m.breakdown(64, 400);
        assert!(r64.imbalance_pct > r2.imbalance_pct + 5.0);
        // Paper: ~5% at 2 sockets, ~19% at 64.
        assert!((2.0..12.0).contains(&r2.imbalance_pct), "{}", r2.imbalance_pct);
        assert!((12.0..30.0).contains(&r64.imbalance_pct), "{}", r64.imbalance_pct);
        assert!(r64.total_actual() > r64.total_best());
    }
}
